"""Gaussian factor graph with sum-product belief propagation.

The cross-technology prior of the paper is obtained by propagating parameter
beliefs between technology nodes.  This module implements the generic
machinery: a factor graph whose variables are real vectors (here, the
four timing-model parameters of each technology plus a shared "global"
parameter mean), with

* **evidence factors** -- unary Gaussian potentials attached to a variable
  (e.g. the parameters extracted from one historical library, with a
  covariance describing within-library spread across cells), and
* **smoothness factors** -- pairwise potentials expressing that two variables
  agree up to Gaussian "technology drift" noise (e.g. consecutive technology
  nodes, or each node versus the global mean).

Messages are Gaussian and exchanged in information form; on tree-structured
graphs (the star and chain topologies used by
:mod:`repro.core.prior_learning`) the algorithm is exact, and on loopy graphs
it runs damped iterations until the beliefs stop changing.

Two engines share the message mathematics:

* :class:`GaussianFactorGraph` runs one graph with a scalar Python loop over
  factors (one small ``np.linalg.solve`` per message) -- simple, and the
  reference for equivalence testing.
* :class:`BatchedFactorGraph` stacks B *independent* graphs that share one
  topology into ``(B, d, d)`` precision / ``(B, d)`` shift arrays and updates
  each message for all B graphs in one batched ``np.linalg.solve``.  The
  sweep keeps the scalar engine's sequential (Gauss-Seidel) factor schedule
  -- only the graph axis is vectorized -- so the batched trajectory is the
  scalar trajectory bit-for-bit, including under damping on loopy graphs.
  Graphs whose messages stop changing retire from the working set (the
  ``batch_map`` active-set pattern), so a few slow loopy graphs do not keep
  the whole fleet sweeping.  This is how
  :func:`repro.core.prior_learning.learn_class_priors` learns every
  (response x arc-class) prior of a technology fleet in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bayes.gaussian import GaussianBatch, GaussianDensity

#: Diagonal jitter used when inverting message precision matrices.
_JITTER = 1e-12


@dataclass
class _Message:
    """A Gaussian message in information form."""

    precision: np.ndarray
    shift: np.ndarray

    @classmethod
    def zero(cls, dim: int) -> "_Message":
        return cls(np.zeros((dim, dim)), np.zeros(dim))

    def copy(self) -> "_Message":
        return _Message(self.precision.copy(), self.shift.copy())


@dataclass(frozen=True)
class _Evidence:
    """Unary factor: a Gaussian potential on one variable."""

    variable: str
    precision: np.ndarray
    shift: np.ndarray


@dataclass(frozen=True)
class _Smoothness:
    """Pairwise factor: ``var_b = var_a + noise`` with the given noise precision."""

    name: str
    variable_a: str
    variable_b: str
    noise_precision: np.ndarray


def _noise_precision_from_covariance(noise_covariance: np.ndarray,
                                     dim: int) -> np.ndarray:
    """Validated Cholesky-based inverse of a (possibly stacked) covariance.

    Accepts a ``(dim, dim)`` matrix or a ``(B, dim, dim)`` stack and inverts
    through the Cholesky factor of the jittered matrix -- cheaper and better
    conditioned than a general LU inverse, and the factorization doubles as
    the positive-semi-definiteness check.
    """
    if not np.allclose(noise_covariance,
                       np.swapaxes(noise_covariance, -1, -2), atol=1e-10):
        raise ValueError(
            "noise covariance must be symmetric (check the technology-drift "
            "or smoothness covariance passed to add_smoothness)")
    jittered = noise_covariance + _JITTER * np.eye(dim)
    try:
        factor = np.linalg.cholesky(jittered)
    except np.linalg.LinAlgError as error:
        raise ValueError(
            "noise covariance must be positive semi-definite; its Cholesky "
            "factorization failed (check the technology-drift or smoothness "
            "covariance passed to add_smoothness)") from error
    identity = np.eye(dim) if factor.ndim == 2 else np.broadcast_to(
        np.eye(dim), factor.shape).copy()
    inverse_factor = np.linalg.solve(factor, identity)
    precision = np.swapaxes(inverse_factor, -1, -2) @ inverse_factor
    return 0.5 * (precision + np.swapaxes(precision, -1, -2))


class GaussianFactorGraph:
    """A factor graph over vector-valued Gaussian variables."""

    def __init__(self) -> None:
        self._dims: Dict[str, int] = {}
        self._evidence: List[_Evidence] = []
        self._smoothness: List[_Smoothness] = []
        # Per-variable factor adjacency, in factor-registration order, so
        # _incoming sums the same terms in the same order as a full factor
        # scan -- without the O(n_factors) rescan per message update.
        self._adjacency: Dict[str, List[_Smoothness]] = {}

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def add_variable(self, name: str, dim: int) -> None:
        """Declare a variable node of the given dimensionality."""
        if dim < 1:
            raise ValueError("variable dimension must be at least 1")
        if name in self._dims:
            raise ValueError(f"variable {name!r} already exists")
        self._dims[name] = int(dim)
        self._adjacency[name] = []

    def variables(self) -> List[str]:
        """Names of all declared variables."""
        return list(self._dims)

    def _require_variable(self, name: str) -> int:
        if name not in self._dims:
            raise KeyError(f"unknown variable {name!r}; declare it with add_variable")
        return self._dims[name]

    def add_evidence(self, variable: str, density: GaussianDensity) -> None:
        """Attach a Gaussian evidence (unary) factor to a variable."""
        dim = self._require_variable(variable)
        if density.dim != dim:
            raise ValueError(
                f"evidence for {variable!r} has dimension {density.dim}, expected {dim}"
            )
        precision, shift = density.to_information()
        self._evidence.append(_Evidence(variable, precision, shift))

    def add_smoothness(self, variable_a: str, variable_b: str,
                       noise_covariance: np.ndarray,
                       name: Optional[str] = None) -> None:
        """Link two variables with ``var_b = var_a + N(0, noise_covariance)``."""
        dim_a = self._require_variable(variable_a)
        dim_b = self._require_variable(variable_b)
        if dim_a != dim_b:
            raise ValueError("linked variables must share a dimension")
        noise_covariance = np.asarray(noise_covariance, dtype=float)
        if noise_covariance.ndim == 1:
            noise_covariance = np.diag(noise_covariance)
        if noise_covariance.shape != (dim_a, dim_a):
            raise ValueError("noise covariance has the wrong shape")
        noise_precision = _noise_precision_from_covariance(noise_covariance,
                                                           dim_a)
        label = name or f"{variable_a}~{variable_b}"
        self._register_smoothness(
            _Smoothness(label, variable_a, variable_b, noise_precision)
        )

    def _register_smoothness(self, factor: _Smoothness) -> None:
        self._smoothness.append(factor)
        self._adjacency[factor.variable_a].append(factor)
        if factor.variable_b != factor.variable_a:
            self._adjacency[factor.variable_b].append(factor)

    # ------------------------------------------------------------------
    # Belief propagation
    # ------------------------------------------------------------------
    def run_belief_propagation(self, max_iterations: int = 100, tolerance: float = 1e-10,
                               damping: float = 0.0) -> Dict[str, GaussianDensity]:
        """Run sum-product message passing and return per-variable beliefs.

        Parameters
        ----------
        max_iterations:
            Upper bound on message-update sweeps (trees converge in at most
            the graph diameter).
        tolerance:
            Convergence threshold on the maximum change of any message entry.
        damping:
            Damping factor in ``[0, 1)`` for loopy graphs (0 = undamped).

        Returns
        -------
        dict
            Mapping of variable name to its Gaussian belief.

        Raises
        ------
        RuntimeError
            If a variable ends up with no information at all (its belief
            would be improper), or if loopy propagation fails to converge.
        """
        if not (0.0 <= damping < 1.0):
            raise ValueError("damping must be in [0, 1)")

        # Unary information per variable (fixed during propagation).
        unary: Dict[str, _Message] = {
            name: _Message.zero(dim) for name, dim in self._dims.items()
        }
        for evidence in self._evidence:
            message = unary[evidence.variable]
            message.precision += evidence.precision
            message.shift += evidence.shift

        # Messages from each pairwise factor to each of its two endpoints.
        messages: Dict[Tuple[str, str], _Message] = {}
        for factor in self._smoothness:
            for target in (factor.variable_a, factor.variable_b):
                messages[(factor.name, target)] = _Message.zero(self._dims[target])

        converged = not self._smoothness
        for _ in range(max_iterations):
            max_change = 0.0
            for factor in self._smoothness:
                for source, target in ((factor.variable_a, factor.variable_b),
                                       (factor.variable_b, factor.variable_a)):
                    incoming = self._incoming(source, factor.name, unary, messages)
                    joint_precision = incoming.precision + factor.noise_precision
                    jitter = _JITTER * np.eye(joint_precision.shape[0])
                    solve = np.linalg.solve(joint_precision + jitter, np.column_stack(
                        [factor.noise_precision, incoming.shift[:, np.newaxis]]))
                    w_solve = solve[:, :-1]
                    h_solve = solve[:, -1]
                    new_precision = factor.noise_precision - factor.noise_precision @ w_solve
                    new_shift = factor.noise_precision @ h_solve
                    key = (factor.name, target)
                    old = messages[key]
                    if damping > 0.0:
                        new_precision = (1.0 - damping) * new_precision + damping * old.precision
                        new_shift = (1.0 - damping) * new_shift + damping * old.shift
                    max_change = max(
                        max_change,
                        float(np.max(np.abs(new_precision - old.precision), initial=0.0)),
                        float(np.max(np.abs(new_shift - old.shift), initial=0.0)),
                    )
                    messages[key] = _Message(new_precision, new_shift)
            if max_change < tolerance:
                converged = True
                break
        if not converged:
            raise RuntimeError(
                "belief propagation did not converge; increase max_iterations or damping"
            )

        beliefs: Dict[str, GaussianDensity] = {}
        for name, dim in self._dims.items():
            belief = self._incoming(name, exclude_factor=None, unary=unary,
                                    messages=messages)
            if np.all(np.abs(belief.precision) < 1e-300):
                raise RuntimeError(
                    f"variable {name!r} received no information; attach evidence or links"
                )
            beliefs[name] = GaussianDensity.from_information(
                belief.precision + _JITTER * np.eye(dim), belief.shift
            )
        return beliefs

    def _incoming(self, variable: str, exclude_factor: Optional[str],
                  unary: Dict[str, _Message],
                  messages: Dict[Tuple[str, str], _Message]) -> _Message:
        """Product of the unary factor and all messages into ``variable``."""
        total = unary[variable].copy()
        for factor in self._adjacency[variable]:
            if factor.name == exclude_factor:
                continue
            message = messages[(factor.name, variable)]
            total.precision = total.precision + message.precision
            total.shift = total.shift + message.shift
        return total

    # ------------------------------------------------------------------
    # Convenience topologies
    # ------------------------------------------------------------------
    @classmethod
    def star(cls, center: str, leaves: Dict[str, GaussianDensity],
             link_covariance: np.ndarray) -> "GaussianFactorGraph":
        """Build a star graph: every leaf observes the central variable.

        This is the topology used to fuse historical technologies into the
        global prior: each leaf carries that technology's extracted
        parameters as evidence, and the link covariance encodes how much
        parameters are allowed to drift between technologies.
        """
        if not leaves:
            raise ValueError("at least one leaf is required")
        dims = {density.dim for density in leaves.values()}
        if len(dims) != 1:
            raise ValueError("all leaves must share a dimension")
        dim = dims.pop()
        graph = cls()
        graph.add_variable(center, dim)
        for leaf_name, density in leaves.items():
            graph.add_variable(leaf_name, dim)
            graph.add_evidence(leaf_name, density)
            graph.add_smoothness(center, leaf_name, link_covariance,
                                 name=f"{center}~{leaf_name}")
        return graph

    @classmethod
    def chain(cls, names: List[str], evidence: Dict[str, GaussianDensity],
              link_covariance: np.ndarray) -> "GaussianFactorGraph":
        """Build a chain graph (e.g. technology nodes ordered by year)."""
        if len(names) < 2:
            raise ValueError("a chain needs at least two variables")
        dims = {density.dim for density in evidence.values()}
        if len(dims) != 1:
            raise ValueError("all evidence densities must share a dimension")
        dim = dims.pop()
        graph = cls()
        for name in names:
            graph.add_variable(name, dim)
            if name in evidence:
                graph.add_evidence(name, evidence[name])
        for left, right in zip(names[:-1], names[1:]):
            graph.add_smoothness(left, right, link_covariance, name=f"{left}~{right}")
        return graph


@dataclass(frozen=True)
class _BatchedSmoothness:
    """Pairwise factor of B stacked graphs: noise precision ``(B, dim, dim)``."""

    name: str
    variable_a: str
    variable_b: str
    noise_precision: np.ndarray


@dataclass(frozen=True)
class BeliefPropagationInfo:
    """Per-graph convergence report of a batched belief-propagation run.

    Attributes
    ----------
    iterations:
        Sweeps each graph stayed in the working set (including the final
        sweep whose message changes fell below the tolerance), shape
        ``(B,)``.  Graphs retire independently, so easy graphs stop paying
        for slow loopy ones.
    converged:
        Per-graph convergence flags (all ``True`` on a successful run;
        ``False`` entries survive only under ``on_divergence="retire"``).
    """

    iterations: np.ndarray
    converged: np.ndarray

    @property
    def diverged(self) -> np.ndarray:
        """Per-graph divergence flags (the complement of ``converged``)."""
        return ~self.converged

    @property
    def n_diverged(self) -> int:
        """Number of graphs that failed to converge."""
        return int(np.count_nonzero(~self.converged))


#: Engines of :meth:`BatchedFactorGraph.run_belief_propagation`.
BP_ENGINES = ("batched", "loop")

_Densities = Union[GaussianDensity, Sequence[GaussianDensity]]


class BatchedFactorGraph:
    """B independent Gaussian factor graphs stacked on one shared topology.

    Variables, factors and their names are shared by every stacked graph;
    evidence densities and smoothness covariances may differ per graph
    (pass a sequence / a ``(B, d, d)`` stack) or be shared (pass one
    density / one matrix).  ``run_belief_propagation`` then advances all B
    graphs through the scalar engine's message schedule with one batched
    linear solve per message update -- see the module docstring.
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self._batch = int(batch_size)
        self._dims: Dict[str, int] = {}
        self._evidence: List[Tuple[str, np.ndarray, np.ndarray]] = []
        self._factors: List[_BatchedSmoothness] = []
        # Factor indices adjacent to each variable, registration order.
        self._adjacency: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """Number of stacked graphs."""
        return self._batch

    def add_variable(self, name: str, dim: int) -> None:
        """Declare a variable node (present in every stacked graph)."""
        if dim < 1:
            raise ValueError("variable dimension must be at least 1")
        if name in self._dims:
            raise ValueError(f"variable {name!r} already exists")
        self._dims[name] = int(dim)
        self._adjacency[name] = []

    def variables(self) -> List[str]:
        """Names of all declared variables."""
        return list(self._dims)

    def _require_variable(self, name: str) -> int:
        if name not in self._dims:
            raise KeyError(f"unknown variable {name!r}; declare it with add_variable")
        return self._dims[name]

    def add_evidence(self, variable: str, densities: _Densities) -> None:
        """Attach evidence: one shared density, or one density per graph.

        Non-finite evidence is rejected here, naming the variable and the
        offending graph index -- a NaN mean or covariance would otherwise
        poison every message sweep and surface only as an opaque
        divergence.
        """
        dim = self._require_variable(variable)

        def check_finite(precision: np.ndarray, shift: np.ndarray,
                         index: Optional[int]) -> None:
            if np.all(np.isfinite(precision)) and np.all(np.isfinite(shift)):
                return
            where = "" if index is None else f" at graph index {index}"
            raise ValueError(
                f"evidence for {variable!r}{where} is non-finite (NaN/Inf "
                "mean or covariance)")

        if isinstance(densities, GaussianDensity):
            if densities.dim != dim:
                raise ValueError(
                    f"evidence for {variable!r} has dimension {densities.dim}, "
                    f"expected {dim}")
            precision, shift = densities.to_information()
            check_finite(precision, shift, None)
            self._evidence.append((
                variable,
                np.broadcast_to(precision, (self._batch, dim, dim)),
                np.broadcast_to(shift, (self._batch, dim)),
            ))
            return
        densities = list(densities)
        if len(densities) != self._batch:
            raise ValueError(
                f"evidence for {variable!r} has {len(densities)} densities, "
                f"expected one per graph ({self._batch})")
        precision = np.empty((self._batch, dim, dim))
        shift = np.empty((self._batch, dim))
        for index, density in enumerate(densities):
            if density.dim != dim:
                raise ValueError(
                    f"evidence for {variable!r} has dimension {density.dim}, "
                    f"expected {dim}")
            precision[index], shift[index] = density.to_information()
            check_finite(precision[index], shift[index], index)
        self._evidence.append((variable, precision, shift))

    def add_smoothness(self, variable_a: str, variable_b: str,
                       noise_covariance: np.ndarray,
                       name: Optional[str] = None) -> None:
        """Link two variables in every graph.

        ``noise_covariance`` is a shared ``(dim,)`` diagonal / ``(dim, dim)``
        matrix, or a ``(B, dim, dim)`` stack with one drift covariance per
        graph.
        """
        dim_a = self._require_variable(variable_a)
        dim_b = self._require_variable(variable_b)
        if dim_a != dim_b:
            raise ValueError("linked variables must share a dimension")
        noise_covariance = np.asarray(noise_covariance, dtype=float)
        if noise_covariance.ndim == 1:
            noise_covariance = np.diag(noise_covariance)
        if noise_covariance.ndim == 2:
            if noise_covariance.shape != (dim_a, dim_a):
                raise ValueError("noise covariance has the wrong shape")
            # Shared covariance: invert once, broadcast to the batch, so the
            # loop engine's scalar graphs see bit-identical precisions.
            precision = np.broadcast_to(
                _noise_precision_from_covariance(noise_covariance, dim_a),
                (self._batch, dim_a, dim_a))
        elif noise_covariance.shape == (self._batch, dim_a, dim_a):
            precision = _noise_precision_from_covariance(noise_covariance,
                                                         dim_a)
        else:
            raise ValueError(
                f"noise covariance must have shape ({dim_a},), "
                f"({dim_a}, {dim_a}) or ({self._batch}, {dim_a}, {dim_a}), "
                f"got {noise_covariance.shape}")
        label = name or f"{variable_a}~{variable_b}"
        index = len(self._factors)
        self._factors.append(
            _BatchedSmoothness(label, variable_a, variable_b, precision))
        self._adjacency[variable_a].append(index)
        if variable_b != variable_a:
            self._adjacency[variable_b].append(index)

    # ------------------------------------------------------------------
    # Belief propagation
    # ------------------------------------------------------------------
    def run_belief_propagation(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-10,
        damping: Union[float, np.ndarray] = 0.0,
        engine: str = "batched",
        return_info: bool = False,
        on_divergence: str = "raise",
    ) -> Union[Dict[str, GaussianBatch],
               Tuple[Dict[str, GaussianBatch], BeliefPropagationInfo]]:
        """Run sum-product message passing on all stacked graphs at once.

        Parameters
        ----------
        max_iterations, tolerance:
            As in :meth:`GaussianFactorGraph.run_belief_propagation`,
            applied per graph.
        damping:
            Scalar shared by all graphs, or a ``(B,)`` array with one
            damping factor per graph; each entry must lie in ``[0, 1)``.
        engine:
            ``"batched"`` (default) runs the vectorized sweeps;
            ``"loop"`` runs the scalar engine once per stacked graph
            (the equivalence reference -- same message schedule, same
            numbers, B times the Python overhead).
        return_info:
            When true (batched engine only), also return a
            :class:`BeliefPropagationInfo` with per-graph sweep counts.
        on_divergence:
            ``"raise"`` (default) aborts when any graph exhausts
            ``max_iterations`` -- the historical fail-fast semantics.
            ``"retire"`` (batched engine only) instead returns beliefs
            built from every graph's last message iterate, flagging the
            diverged graphs ``False`` in ``BeliefPropagationInfo.converged``
            (pass ``return_info=True`` to see them); converged graphs are
            bit-identical to a fail-fast run.

        Returns
        -------
        dict (optionally with a BeliefPropagationInfo)
            Mapping of variable name to its stacked beliefs.

        Raises
        ------
        RuntimeError
            If any graph fails to converge (unless retiring), or a
            variable has no information.
        """
        if engine not in BP_ENGINES:
            raise ValueError(f"engine must be one of {BP_ENGINES}, got {engine!r}")
        if on_divergence not in ("raise", "retire"):
            raise ValueError(f"on_divergence must be 'raise' or 'retire', "
                             f"got {on_divergence!r}")
        if on_divergence == "retire" and engine == "loop":
            raise ValueError("on_divergence='retire' requires engine='batched' "
                             "(the loop engine is the fail-fast parity "
                             "reference)")
        damping = np.asarray(damping, dtype=float)
        if damping.ndim == 0:
            damping = np.full(self._batch, float(damping))
        elif damping.shape != (self._batch,):
            raise ValueError(
                f"damping must be a scalar or have shape ({self._batch},), "
                f"got {damping.shape}")
        if np.any((damping < 0.0) | (damping >= 1.0)):
            raise ValueError("damping must be in [0, 1)")
        if engine == "loop":
            if return_info:
                raise ValueError("return_info requires engine='batched'")
            return self._run_loop(max_iterations, tolerance, damping)
        return self._run_batched(max_iterations, tolerance, damping,
                                 return_info, on_divergence)

    def _run_loop(self, max_iterations: int, tolerance: float,
                  damping: np.ndarray) -> Dict[str, GaussianBatch]:
        """The scalar engine, once per stacked graph (parity reference)."""
        per_graph: List[Dict[str, GaussianDensity]] = []
        for index in range(self._batch):
            graph = GaussianFactorGraph()
            for name, dim in self._dims.items():
                graph.add_variable(name, dim)
            for variable, precision, shift in self._evidence:
                graph._evidence.append(
                    _Evidence(variable, precision[index], shift[index]))
            for factor in self._factors:
                graph._register_smoothness(_Smoothness(
                    factor.name, factor.variable_a, factor.variable_b,
                    factor.noise_precision[index]))
            per_graph.append(graph.run_belief_propagation(
                max_iterations=max_iterations, tolerance=tolerance,
                damping=float(damping[index])))
        return {
            name: GaussianBatch.from_densities(
                [beliefs[name] for beliefs in per_graph])
            for name in self._dims
        }

    def _run_batched(self, max_iterations: int, tolerance: float,
                     damping: np.ndarray, return_info: bool,
                     on_divergence: str = "raise"):
        batch = self._batch
        unary: Dict[str, Tuple[np.ndarray, np.ndarray]] = {
            name: (np.zeros((batch, dim, dim)), np.zeros((batch, dim)))
            for name, dim in self._dims.items()
        }
        for variable, precision, shift in self._evidence:
            unary[variable][0][...] += precision
            unary[variable][1][...] += shift

        # Message arrays from each factor to each of its endpoints.
        msg_precision: Dict[Tuple[int, str], np.ndarray] = {}
        msg_shift: Dict[Tuple[int, str], np.ndarray] = {}
        for index, factor in enumerate(self._factors):
            for target in (factor.variable_a, factor.variable_b):
                dim = self._dims[target]
                msg_precision[(index, target)] = np.zeros((batch, dim, dim))
                msg_shift[(index, target)] = np.zeros((batch, dim))

        def incoming(variable: str, exclude: Optional[int],
                     rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            """Unary information plus all messages into ``variable``.

            Summed in factor-registration order -- the scalar engine's
            float summation order -- for the selected graph rows.
            """
            precision = unary[variable][0][rows].copy()
            shift = unary[variable][1][rows].copy()
            for factor_index in self._adjacency[variable]:
                if factor_index == exclude:
                    continue
                precision += msg_precision[(factor_index, variable)][rows]
                shift += msg_shift[(factor_index, variable)][rows]
            return precision, shift

        iterations = np.zeros(batch, dtype=int)
        converged = (np.ones(batch, dtype=bool) if not self._factors
                     else np.zeros(batch, dtype=bool))
        active = np.arange(batch) if self._factors else np.arange(0)
        for _ in range(max_iterations):
            if active.size == 0:
                break
            iterations[active] += 1
            max_change = np.zeros(active.size)
            damp = damping[active]
            use_damping = bool(np.any(damp > 0.0))
            for index, factor in enumerate(self._factors):
                noise = factor.noise_precision[active]
                for source, target in ((factor.variable_a, factor.variable_b),
                                       (factor.variable_b, factor.variable_a)):
                    in_precision, in_shift = incoming(source, index, active)
                    joint = in_precision + noise
                    dim = joint.shape[-1]
                    joint = joint + _JITTER * np.eye(dim)
                    rhs = np.concatenate([noise, in_shift[..., np.newaxis]],
                                         axis=2)
                    solve = np.linalg.solve(joint, rhs)
                    new_precision = noise - np.matmul(noise, solve[:, :, :-1])
                    new_shift = np.matmul(noise, solve[:, :, -1:])[..., 0]
                    key = (index, target)
                    old_precision = msg_precision[key][active]
                    old_shift = msg_shift[key][active]
                    if use_damping:
                        blend = damp[:, np.newaxis, np.newaxis]
                        new_precision = ((1.0 - blend) * new_precision
                                         + blend * old_precision)
                        new_shift = ((1.0 - damp[:, np.newaxis]) * new_shift
                                     + damp[:, np.newaxis] * old_shift)
                    max_change = np.maximum(
                        max_change,
                        np.abs(new_precision - old_precision).max(axis=(1, 2)))
                    max_change = np.maximum(
                        max_change,
                        np.abs(new_shift - old_shift).max(axis=1))
                    msg_precision[key][active] = new_precision
                    msg_shift[key][active] = new_shift
            settled = max_change < tolerance
            converged[active[settled]] = True
            active = active[~settled]
        if active.size and on_divergence == "raise":
            raise RuntimeError(
                f"belief propagation did not converge for {active.size} of "
                f"{batch} stacked graphs; increase max_iterations or damping")
        # on_divergence="retire": diverged graphs keep their last message
        # iterate (their beliefs below are best-effort) and stay flagged
        # False in the info's converged mask.

        everything = np.arange(batch)
        beliefs: Dict[str, GaussianBatch] = {}
        for name, dim in self._dims.items():
            precision, shift = incoming(name, None, everything)
            if np.any(np.all(np.abs(precision) < 1e-300, axis=(1, 2))):
                raise RuntimeError(
                    f"variable {name!r} received no information; attach "
                    "evidence or links")
            beliefs[name] = GaussianBatch.from_information(
                precision + _JITTER * np.eye(dim), shift)
        if return_info:
            return beliefs, BeliefPropagationInfo(iterations=iterations,
                                                  converged=converged)
        return beliefs

    # ------------------------------------------------------------------
    # Convenience topologies
    # ------------------------------------------------------------------
    @classmethod
    def star(cls, center: str, leaves: Dict[str, _Densities],
             link_covariance: np.ndarray) -> "BatchedFactorGraph":
        """B stacked star graphs (cf. :meth:`GaussianFactorGraph.star`).

        Each leaf carries one evidence density per graph (a shared density
        is replicated); ``link_covariance`` may likewise be shared or a
        ``(B, d, d)`` stack (e.g. one technology-drift covariance per
        stacked response/arc-class graph).
        """
        if not leaves:
            raise ValueError("at least one leaf is required")
        batch = _infer_batch_size(leaves.values())
        dims = {_first_density(value).dim for value in leaves.values()}
        if len(dims) != 1:
            raise ValueError("all leaves must share a dimension")
        dim = dims.pop()
        graph = cls(batch)
        graph.add_variable(center, dim)
        for leaf_name, densities in leaves.items():
            graph.add_variable(leaf_name, dim)
            graph.add_evidence(leaf_name, densities)
            graph.add_smoothness(center, leaf_name, link_covariance,
                                 name=f"{center}~{leaf_name}")
        return graph

    @classmethod
    def chain(cls, names: List[str], evidence: Dict[str, _Densities],
              link_covariance: np.ndarray) -> "BatchedFactorGraph":
        """B stacked chain graphs (cf. :meth:`GaussianFactorGraph.chain`)."""
        if len(names) < 2:
            raise ValueError("a chain needs at least two variables")
        if not evidence:
            raise ValueError("at least one evidence entry is required")
        batch = _infer_batch_size(evidence.values())
        dims = {_first_density(value).dim for value in evidence.values()}
        if len(dims) != 1:
            raise ValueError("all evidence densities must share a dimension")
        dim = dims.pop()
        graph = cls(batch)
        for name in names:
            graph.add_variable(name, dim)
            if name in evidence:
                graph.add_evidence(name, evidence[name])
        for left, right in zip(names[:-1], names[1:]):
            graph.add_smoothness(left, right, link_covariance,
                                 name=f"{left}~{right}")
        return graph


def _first_density(value: _Densities) -> GaussianDensity:
    if isinstance(value, GaussianDensity):
        return value
    value = list(value)
    if not value:
        raise ValueError("evidence sequences must be non-empty")
    return value[0]


def _infer_batch_size(values) -> int:
    """Batch size implied by evidence sequences (shared densities adapt)."""
    sizes = {len(list(value)) for value in values
             if not isinstance(value, GaussianDensity)}
    if len(sizes) > 1:
        raise ValueError(
            f"evidence sequences imply conflicting batch sizes: {sorted(sizes)}")
    return sizes.pop() if sizes else 1
