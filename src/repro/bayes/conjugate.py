"""Conjugate Gaussian updates.

The paper assumes a conjugate Gaussian prior on the mean of the timing-model
parameter distribution (its Eq. 7).  When the observation model is linear (or
linearized), the posterior stays Gaussian and has a closed form; these
updates are used by the factor-graph messages and provide reference solutions
for testing the iterative MAP optimizer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bayes.gaussian import GaussianDensity


def gaussian_linear_update(prior: GaussianDensity,
                           design: np.ndarray,
                           observations: np.ndarray,
                           noise_precision: np.ndarray) -> GaussianDensity:
    """Posterior of ``theta`` for the linear model ``y = H @ theta + noise``.

    Parameters
    ----------
    prior:
        Gaussian prior over ``theta``.
    design:
        Design matrix ``H`` of shape ``(n_obs, dim)``.
    observations:
        Observed vector ``y`` of length ``n_obs``.
    noise_precision:
        Per-observation noise precisions (inverse variances), length
        ``n_obs`` (or a scalar applied to all observations).

    Returns
    -------
    GaussianDensity
        The Gaussian posterior over ``theta``.
    """
    design = np.atleast_2d(np.asarray(design, dtype=float))
    observations = np.asarray(observations, dtype=float).reshape(-1)
    if design.shape[0] != observations.size:
        raise ValueError(
            f"design has {design.shape[0]} rows but there are {observations.size} observations"
        )
    if design.shape[1] != prior.dim:
        raise ValueError(
            f"design has {design.shape[1]} columns but the prior has dimension {prior.dim}"
        )
    noise_precision = np.asarray(noise_precision, dtype=float).reshape(-1)
    if noise_precision.size == 1:
        noise_precision = np.full(observations.size, float(noise_precision[0]))
    if noise_precision.size != observations.size:
        raise ValueError("noise_precision must be scalar or one value per observation")
    if np.any(noise_precision < 0.0):
        raise ValueError("noise precisions must be non-negative")

    prior_precision, prior_shift = prior.to_information()
    weighted = design * noise_precision[:, np.newaxis]
    posterior_precision = prior_precision + design.T @ weighted
    posterior_shift = prior_shift + weighted.T @ observations
    return GaussianDensity.from_information(posterior_precision, posterior_shift)


def posterior_of_mean(prior: GaussianDensity,
                      observations: np.ndarray,
                      observation_precisions: Optional[Sequence[float]] = None
                      ) -> GaussianDensity:
    """Posterior of an unknown mean vector given direct noisy observations.

    This is the special case of :func:`gaussian_linear_update` with an
    identity design matrix: each observation is a full parameter vector
    measured with (diagonal, isotropic per observation) noise.  It is the
    update used when fusing per-technology parameter extractions into the
    cross-technology prior.

    Parameters
    ----------
    prior:
        Gaussian prior over the mean vector.
    observations:
        Array of shape ``(n_obs, dim)``: one parameter vector per historical
        observation.
    observation_precisions:
        One scalar precision per observation (defaults to 1.0 for all).
    """
    observations = np.atleast_2d(np.asarray(observations, dtype=float))
    n_obs, dim = observations.shape
    if dim != prior.dim:
        raise ValueError(f"observations have dimension {dim}, prior has {prior.dim}")
    if observation_precisions is None:
        precisions = np.ones(n_obs)
    else:
        precisions = np.asarray(observation_precisions, dtype=float).reshape(-1)
        if precisions.size != n_obs:
            raise ValueError("one precision per observation is required")
    design = np.tile(np.eye(dim), (n_obs, 1))
    noise = np.repeat(precisions, dim)
    return gaussian_linear_update(prior, design, observations.reshape(-1), noise)
