"""Bayesian machinery: Gaussian algebra, precision learning, belief propagation.

The paper's "belief propagation across multiple technology nodes" is the
fusion of compact-model parameter extractions from historical libraries into
a conjugate Gaussian prior for the target technology, plus an
input-condition-dependent model precision (Eq. 9).  This package provides the
reusable pieces:

* :mod:`repro.bayes.gaussian` -- multivariate Gaussian densities with both
  moment and information (canonical) parameterizations;
* :mod:`repro.bayes.conjugate` -- conjugate / linear-Gaussian updates;
* :mod:`repro.bayes.precision` -- the model-precision (``beta``) estimator of
  Eq. 9 with input-space interpolation;
* :mod:`repro.bayes.factor_graph` -- a Gaussian factor graph with sum-product
  message passing (exact on trees, loopy with damping otherwise), used to
  propagate parameter beliefs along the chain of technology nodes, plus a
  batched engine (:class:`~repro.bayes.factor_graph.BatchedFactorGraph`)
  that sweeps a whole fleet of same-topology graphs at once.
"""

from repro.bayes.gaussian import GaussianBatch, GaussianDensity
from repro.bayes.conjugate import gaussian_linear_update, posterior_of_mean
from repro.bayes.precision import PrecisionModel
from repro.bayes.factor_graph import (
    BatchedFactorGraph,
    BeliefPropagationInfo,
    GaussianFactorGraph,
)

__all__ = [
    "BatchedFactorGraph",
    "BeliefPropagationInfo",
    "GaussianBatch",
    "GaussianDensity",
    "GaussianFactorGraph",
    "PrecisionModel",
    "gaussian_linear_update",
    "posterior_of_mean",
]
