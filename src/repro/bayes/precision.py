"""Model-precision (``beta``) learning across technologies (Eq. 9).

The compact timing model cannot capture every physical effect, and how much
it misses depends systematically on the operating point -- e.g. it is least
accurate at the lowest supply voltages.  The paper quantifies this with a
per-input-condition precision

.. math::

    \\beta(\\xi) = \\Big[\\tfrac{1}{N_{tech}}\\sum_j r_j(\\xi)^2
        - \\big(\\tfrac{1}{N_{tech}}\\sum_j |r_j(\\xi)|\\big)^2\\Big]^{-1}

where ``r_j`` is the relative residual of the fitted model in historical
technology ``j`` at condition ``xi`` -- i.e. the inverse variance of the
absolute relative residual across technologies.  High ``beta`` means the
model is trustworthy there and the corresponding target-technology
observation is weighted strongly in the MAP objective.

:class:`PrecisionModel` stores the per-condition precisions on the historical
reference conditions (in normalized input-space coordinates so different
technologies' ranges align) and answers queries at arbitrary operating points
with inverse-distance-weighted interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Precisions are clipped into this range to keep the MAP objective
#: well-conditioned even where the historical residuals are degenerate
#: (zero variance would give infinite precision).
_MIN_PRECISION = 1.0
_MAX_PRECISION = 1e8


def precision_from_relative_residuals(residuals: np.ndarray) -> np.ndarray:
    """Eq. 9: per-condition precision from cross-technology relative residuals.

    Parameters
    ----------
    residuals:
        Array of shape ``(n_tech, n_conditions)`` holding the relative
        residuals ``(T_observed - T_model) / T_observed`` of the historical
        fits.

    Returns
    -------
    numpy.ndarray
        Precisions of length ``n_conditions``, clipped into a safe range.
    """
    residuals = np.atleast_2d(np.asarray(residuals, dtype=float))
    if residuals.shape[0] < 1:
        raise ValueError("at least one technology's residuals are required")
    mean_square = np.mean(residuals ** 2, axis=0)
    mean_abs = np.mean(np.abs(residuals), axis=0)
    variance = mean_square - mean_abs ** 2
    variance = np.maximum(variance, 1.0 / _MAX_PRECISION)
    return np.clip(1.0 / variance, _MIN_PRECISION, _MAX_PRECISION)


@dataclass(frozen=True)
class PrecisionModel:
    """Input-condition-dependent model precision ``beta(xi)``.

    Attributes
    ----------
    unit_conditions:
        Reference conditions in normalized (unit-cube) input-space
        coordinates, shape ``(n_conditions, 3)``.
    precisions:
        Precision value at each reference condition.
    """

    unit_conditions: np.ndarray
    precisions: np.ndarray

    def __post_init__(self) -> None:
        unit = np.atleast_2d(np.asarray(self.unit_conditions, dtype=float))
        prec = np.asarray(self.precisions, dtype=float).reshape(-1)
        if unit.shape[0] != prec.size:
            raise ValueError("one precision per reference condition is required")
        if np.any(prec <= 0.0):
            raise ValueError("precisions must be strictly positive")
        object.__setattr__(self, "unit_conditions", unit)
        object.__setattr__(self, "precisions", prec)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_residuals(cls, unit_conditions: np.ndarray, residuals: np.ndarray
                       ) -> "PrecisionModel":
        """Build from historical relative residuals via Eq. 9."""
        return cls(unit_conditions=np.asarray(unit_conditions, dtype=float),
                   precisions=precision_from_relative_residuals(residuals))

    @classmethod
    def constant(cls, precision: float) -> "PrecisionModel":
        """A flat precision model (used when no historical data is available)."""
        if precision <= 0.0:
            raise ValueError("precision must be positive")
        return cls(unit_conditions=np.array([[0.5, 0.5, 0.5]]),
                   precisions=np.array([float(precision)]))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def beta(self, unit_points: np.ndarray, n_neighbors: int = 4) -> np.ndarray:
        """Interpolated precision at normalized operating points.

        Inverse-distance weighting over the ``n_neighbors`` nearest reference
        conditions; exact matches return the stored precision.

        Parameters
        ----------
        unit_points:
            Array of shape ``(n_points, 3)`` (or a single length-3 vector) in
            unit-cube coordinates.
        n_neighbors:
            Number of nearest reference conditions to blend.
        """
        points = np.atleast_2d(np.asarray(unit_points, dtype=float))
        if points.shape[1] != self.unit_conditions.shape[1]:
            raise ValueError(
                f"query points have dimension {points.shape[1]}, "
                f"expected {self.unit_conditions.shape[1]}"
            )
        n_refs = self.unit_conditions.shape[0]
        k = int(min(max(n_neighbors, 1), n_refs))
        result = np.empty(points.shape[0])
        for index, point in enumerate(points):
            distances = np.linalg.norm(self.unit_conditions - point, axis=1)
            nearest = np.argsort(distances)[:k]
            nearest_distances = distances[nearest]
            if nearest_distances[0] < 1e-12:
                result[index] = self.precisions[nearest[0]]
                continue
            weights = 1.0 / nearest_distances
            weights = weights / weights.sum()
            result[index] = float(weights @ self.precisions[nearest])
        return result

    def average_precision(self) -> float:
        """Mean precision over the reference conditions."""
        return float(np.mean(self.precisions))

    def scaled(self, factor: float) -> "PrecisionModel":
        """Return a copy with all precisions multiplied by ``factor``.

        Used in ablation studies of how strongly the likelihood term is
        weighted against the prior.
        """
        if factor <= 0.0:
            raise ValueError("factor must be positive")
        return PrecisionModel(unit_conditions=self.unit_conditions.copy(),
                              precisions=np.clip(self.precisions * factor,
                                                 _MIN_PRECISION, _MAX_PRECISION))
