"""Multivariate Gaussian densities.

:class:`GaussianDensity` is the workhorse of the Bayesian flow: priors over
timing-model parameters, messages in the factor graph, and propagated
parameter posteriors are all Gaussians.  Both the moment form ``(mean,
covariance)`` and the information (canonical) form ``(precision, shift)`` are
supported because belief propagation multiplies densities (trivial in
information form) while sampling and reporting use the moment form.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng

#: Default jitter added to covariance diagonals to keep them positive definite.
_DEFAULT_JITTER = 1e-12


class GaussianDensity:
    """A multivariate Gaussian ``N(mean, covariance)``."""

    def __init__(self, mean: Sequence[float], covariance: Sequence[Sequence[float]]):
        mean = np.asarray(mean, dtype=float).reshape(-1)
        covariance = np.asarray(covariance, dtype=float)
        if covariance.ndim == 1:
            covariance = np.diag(covariance)
        if covariance.shape != (mean.size, mean.size):
            raise ValueError(
                f"covariance shape {covariance.shape} does not match mean size {mean.size}"
            )
        if not np.allclose(covariance, covariance.T, atol=1e-10):
            raise ValueError("covariance must be symmetric")
        eigenvalues = np.linalg.eigvalsh(covariance)
        if np.any(eigenvalues < -1e-10):
            raise ValueError("covariance must be positive semi-definite")
        self._mean = mean
        self._cov = 0.5 * (covariance + covariance.T)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples: np.ndarray, jitter: float = _DEFAULT_JITTER,
                     shrinkage: float = 0.0) -> "GaussianDensity":
        """Maximum-likelihood Gaussian from rows of samples.

        Parameters
        ----------
        samples:
            Array of shape ``(n_samples, dim)``.
        jitter:
            Diagonal regularization added to the covariance.
        shrinkage:
            Optional Ledoit-Wolf-style shrinkage toward the diagonal
            (``0`` = raw sample covariance, ``1`` = diagonal only), useful
            when the number of historical technologies is small.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[0] < 1:
            raise ValueError("samples must be a non-empty (n_samples, dim) array")
        if not (0.0 <= shrinkage <= 1.0):
            raise ValueError("shrinkage must be in [0, 1]")
        mean = samples.mean(axis=0)
        if samples.shape[0] == 1:
            cov = np.zeros((samples.shape[1], samples.shape[1]))
        else:
            cov = np.cov(samples, rowvar=False, ddof=1)
            cov = np.atleast_2d(cov)
        diagonal = np.diag(np.diag(cov))
        cov = (1.0 - shrinkage) * cov + shrinkage * diagonal
        cov = cov + jitter * np.eye(samples.shape[1])
        return cls(mean, cov)

    @classmethod
    def from_information(cls, precision: np.ndarray, shift: np.ndarray
                         ) -> "GaussianDensity":
        """Build from the information form ``J = cov^-1``, ``h = J @ mean``."""
        precision = np.asarray(precision, dtype=float)
        shift = np.asarray(shift, dtype=float).reshape(-1)
        covariance = np.linalg.inv(precision)
        mean = covariance @ shift
        return cls(mean, covariance)

    @classmethod
    def isotropic(cls, mean: Sequence[float], variance: float) -> "GaussianDensity":
        """A Gaussian with the same variance in every dimension."""
        mean = np.asarray(mean, dtype=float).reshape(-1)
        if variance <= 0.0:
            raise ValueError("variance must be positive")
        return cls(mean, variance * np.eye(mean.size))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def mean(self) -> np.ndarray:
        """Mean vector."""
        return self._mean.copy()

    @property
    def covariance(self) -> np.ndarray:
        """Covariance matrix."""
        return self._cov.copy()

    @property
    def dim(self) -> int:
        """Dimensionality."""
        return self._mean.size

    def standard_deviations(self) -> np.ndarray:
        """Marginal standard deviations (square roots of the diagonal)."""
        return np.sqrt(np.clip(np.diag(self._cov), 0.0, None))

    def to_information(self, jitter: float = _DEFAULT_JITTER
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Return the information form ``(J, h)`` with diagonal jitter."""
        regularized = self._cov + jitter * np.eye(self.dim)
        precision = np.linalg.inv(regularized)
        return precision, precision @ self._mean

    def whitening_matrix(self, jitter: float = _DEFAULT_JITTER) -> np.ndarray:
        """Upper-triangular ``L`` with ``L.T @ L = cov^-1`` (plus jitter).

        Whitened residuals ``L @ (x - mean)`` turn the Gaussian quadratic
        form into a plain sum of squares: ``||L @ (x - mean)||^2`` equals the
        squared Mahalanobis distance.  Both the scalar and the batched MAP
        estimators stack these whitened prior residuals under the data
        residuals so the Eq. 15 objective becomes one least-squares problem.
        """
        precision = np.linalg.inv(self._cov + jitter * np.eye(self.dim))
        return np.linalg.cholesky(precision).T

    # ------------------------------------------------------------------
    # Probability operations
    # ------------------------------------------------------------------
    def log_pdf(self, x: Sequence[float]) -> float:
        """Log density at ``x``."""
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.size != self.dim:
            raise ValueError(f"x has dimension {x.size}, expected {self.dim}")
        regularized = self._cov + _DEFAULT_JITTER * np.eye(self.dim)
        sign, log_det = np.linalg.slogdet(regularized)
        if sign <= 0:
            raise np.linalg.LinAlgError("covariance is not positive definite")
        residual = x - self._mean
        mahalanobis = residual @ np.linalg.solve(regularized, residual)
        return float(-0.5 * (self.dim * np.log(2.0 * np.pi) + log_det + mahalanobis))

    def mahalanobis(self, x: Sequence[float]) -> float:
        """Mahalanobis distance of ``x`` from the mean."""
        x = np.asarray(x, dtype=float).reshape(-1)
        regularized = self._cov + _DEFAULT_JITTER * np.eye(self.dim)
        residual = x - self._mean
        return float(np.sqrt(residual @ np.linalg.solve(regularized, residual)))

    def sample(self, n_samples: int, rng: RandomState = None) -> np.ndarray:
        """Draw samples, shape ``(n_samples, dim)``."""
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        generator = ensure_rng(rng)
        return generator.multivariate_normal(self._mean, self._cov, size=n_samples)

    def multiply(self, other: "GaussianDensity") -> "GaussianDensity":
        """Product of two Gaussian densities (up to normalization)."""
        if other.dim != self.dim:
            raise ValueError("cannot multiply Gaussians of different dimension")
        j_a, h_a = self.to_information()
        j_b, h_b = other.to_information()
        return GaussianDensity.from_information(j_a + j_b, h_a + h_b)

    def marginal(self, indices: Sequence[int]) -> "GaussianDensity":
        """Marginal over a subset of dimensions."""
        indices = np.asarray(indices, dtype=int)
        return GaussianDensity(self._mean[indices], self._cov[np.ix_(indices, indices)])

    def condition(self, indices: Sequence[int], values: Sequence[float]
                  ) -> "GaussianDensity":
        """Condition on observed values of a subset of dimensions.

        Returns the conditional Gaussian over the remaining dimensions.
        """
        indices = np.asarray(indices, dtype=int)
        values = np.asarray(values, dtype=float).reshape(-1)
        if indices.size != values.size:
            raise ValueError("indices and values must have the same length")
        keep = np.setdiff1d(np.arange(self.dim), indices)
        if keep.size == 0:
            raise ValueError("cannot condition on every dimension")
        cov_kk = self._cov[np.ix_(keep, keep)]
        cov_ko = self._cov[np.ix_(keep, indices)]
        cov_oo = self._cov[np.ix_(indices, indices)] + _DEFAULT_JITTER * np.eye(indices.size)
        gain = cov_ko @ np.linalg.inv(cov_oo)
        new_mean = self._mean[keep] + gain @ (values - self._mean[indices])
        new_cov = cov_kk - gain @ cov_ko.T
        return GaussianDensity(new_mean, 0.5 * (new_cov + new_cov.T))

    def kl_divergence(self, other: "GaussianDensity") -> float:
        """``KL(self || other)`` in nats."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch")
        cov_other = other._cov + _DEFAULT_JITTER * np.eye(self.dim)
        cov_self = self._cov + _DEFAULT_JITTER * np.eye(self.dim)
        inv_other = np.linalg.inv(cov_other)
        diff = other._mean - self._mean
        trace_term = float(np.trace(inv_other @ cov_self))
        quad_term = float(diff @ inv_other @ diff)
        sign_o, logdet_o = np.linalg.slogdet(cov_other)
        sign_s, logdet_s = np.linalg.slogdet(cov_self)
        if sign_o <= 0 or sign_s <= 0:
            raise np.linalg.LinAlgError("covariances must be positive definite")
        return 0.5 * (trace_term + quad_term - self.dim + logdet_o - logdet_s)

    def scaled_covariance(self, factor: float) -> "GaussianDensity":
        """Same mean, covariance multiplied by ``factor`` (prior widening)."""
        if factor <= 0.0:
            raise ValueError("factor must be positive")
        return GaussianDensity(self._mean, self._cov * factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaussianDensity(dim={self.dim}, mean={np.round(self._mean, 4)})"


class GaussianBatch:
    """A batch of same-dimension Gaussians: ``mean (B, d)``, ``cov (B, d, d)``.

    The batched belief-propagation engine
    (:class:`repro.bayes.factor_graph.BatchedFactorGraph`) returns one belief
    *per stacked graph* for every variable; materializing B
    :class:`GaussianDensity` objects (each paying an eigendecomposition in
    validation) would dominate the batched solve, so beliefs stay stacked and
    are expanded on demand via :meth:`density`.
    """

    def __init__(self, mean: np.ndarray, covariance: np.ndarray):
        mean = np.asarray(mean, dtype=float)
        covariance = np.asarray(covariance, dtype=float)
        if mean.ndim != 2:
            raise ValueError(f"mean must have shape (B, d), got {mean.shape}")
        if covariance.shape != (mean.shape[0], mean.shape[1], mean.shape[1]):
            raise ValueError(
                f"covariance shape {covariance.shape} does not match mean "
                f"shape {mean.shape}")
        self._mean = mean
        self._cov = 0.5 * (covariance + np.swapaxes(covariance, -1, -2))

    @classmethod
    def from_information(cls, precision: np.ndarray, shift: np.ndarray
                         ) -> "GaussianBatch":
        """Batched information-form constructor (``J (B,d,d)``, ``h (B,d)``)."""
        precision = np.asarray(precision, dtype=float)
        shift = np.asarray(shift, dtype=float)
        covariance = np.linalg.inv(precision)
        mean = np.matmul(covariance, shift[..., np.newaxis])[..., 0]
        return cls(mean, covariance)

    @classmethod
    def from_densities(cls, densities: Sequence[GaussianDensity]
                       ) -> "GaussianBatch":
        """Stack scalar densities (all must share a dimension)."""
        densities = list(densities)
        if not densities:
            raise ValueError("at least one density is required")
        dims = {density.dim for density in densities}
        if len(dims) != 1:
            raise ValueError("all densities must share a dimension")
        return cls(np.stack([d.mean for d in densities]),
                   np.stack([d.covariance for d in densities]))

    @property
    def batch_size(self) -> int:
        """Number of stacked Gaussians."""
        return self._mean.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of each Gaussian."""
        return self._mean.shape[1]

    @property
    def mean(self) -> np.ndarray:
        """Stacked means, shape ``(B, d)``."""
        return self._mean.copy()

    @property
    def covariance(self) -> np.ndarray:
        """Stacked covariances, shape ``(B, d, d)``."""
        return self._cov.copy()

    def standard_deviations(self) -> np.ndarray:
        """Marginal standard deviations per graph, shape ``(B, d)``."""
        diagonals = np.diagonal(self._cov, axis1=-2, axis2=-1)
        return np.sqrt(np.clip(diagonals, 0.0, None))

    def density(self, index: int) -> GaussianDensity:
        """One stacked Gaussian as a full (validated) scalar density."""
        return GaussianDensity(self._mean[index], self._cov[index])

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaussianBatch(batch_size={self.batch_size}, dim={self.dim})"
