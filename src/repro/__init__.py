"""repro -- statistical standard-cell library characterization with belief propagation.

A from-scratch reproduction of *"Statistical Library Characterization Using
Belief Propagation across Multiple Technology Nodes"* (Yu et al., DATE 2015),
including every substrate the paper depends on: compact MOSFET models, six
synthetic technology nodes with process variation, a standard-cell catalog
with equivalent-inverter reduction, a vectorized transient circuit simulator,
the four-parameter compact timing model, Gaussian belief propagation for
cross-technology prior learning, MAP parameter extraction, statistical
(per-seed) characterization, and the look-up-table / least-squares /
Monte Carlo baselines it is compared against.

Typical usage::

    from repro import (
        get_technology, make_cell, characterize_historical_library,
        learn_prior, BayesianCharacterizer, historical_technologies,
    )

    target = get_technology("n14_finfet")
    historical = [characterize_historical_library(node, [make_cell("INV_X1")])
                  for node in historical_technologies(exclude=target.name)]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")
    flow = BayesianCharacterizer(target, make_cell("NOR2_X1"), delay_prior, slew_prior)
    flow.fit(2)                      # two simulations
    flow.predict_delay(conditions)   # analytical everywhere else
"""

from repro.technology import (
    ProcessCorner,
    TechnologyNode,
    VariationSample,
    get_technology,
    historical_technologies,
    list_technologies,
)
from repro.cells import (
    Cell,
    StandardCellLibrary,
    TimingArc,
    Transition,
    available_cells,
    default_library,
    make_cell,
    reduce_cell,
    reduce_cell_cached,
)
from repro.spice import (
    BatchTransientResult,
    IntegrationStats,
    SimulationCache,
    SimulationCounter,
    StepperSpec,
    TimingMeasurement,
    WaveformBatch,
    characterize_arc,
    get_simulation_cache,
    simulate_arc_transition,
    simulate_arc_transition_adaptive,
    simulate_arc_transitions,
    simulate_arc_transitions_adaptive,
    sweep_conditions,
)
from repro.characterization import (
    InputCondition,
    InputSpace,
    LseCharacterizer,
    LutCharacterizer,
    StatisticalLutCharacterizer,
    mean_relative_error,
    nominal_baseline,
    statistical_baseline,
    statistical_errors,
)
from repro.core import (
    BatchMapObservations,
    BatchMapResult,
    BayesianCharacterizer,
    CompactTimingModel,
    LibraryCharacterization,
    StatisticalCharacterizer,
    TimingModelParameters,
    TimingPrior,
    characterize_historical_libraries,
    characterize_historical_library,
    characterize_library,
    fit_least_squares,
    learn_class_priors,
    learn_prior,
    learn_priors,
    map_estimate,
    map_estimate_batch,
)
from repro.bayes import (
    BatchedFactorGraph,
    GaussianBatch,
    GaussianDensity,
    GaussianFactorGraph,
    PrecisionModel,
)
from repro.experiments import AccuracyCurve, ExperimentRunner, compute_speedup
from repro.runtime import LruCache, RunLedger, cache_stats

__version__ = "1.0.0"

__all__ = [
    "AccuracyCurve",
    "BatchMapObservations",
    "BatchMapResult",
    "BatchTransientResult",
    "BatchedFactorGraph",
    "BayesianCharacterizer",
    "Cell",
    "CompactTimingModel",
    "ExperimentRunner",
    "GaussianBatch",
    "GaussianDensity",
    "GaussianFactorGraph",
    "InputCondition",
    "InputSpace",
    "IntegrationStats",
    "LibraryCharacterization",
    "LruCache",
    "LseCharacterizer",
    "LutCharacterizer",
    "PrecisionModel",
    "ProcessCorner",
    "RunLedger",
    "SimulationCache",
    "SimulationCounter",
    "StandardCellLibrary",
    "StatisticalCharacterizer",
    "StepperSpec",
    "StatisticalLutCharacterizer",
    "TechnologyNode",
    "TimingArc",
    "TimingMeasurement",
    "TimingModelParameters",
    "TimingPrior",
    "Transition",
    "VariationSample",
    "WaveformBatch",
    "available_cells",
    "cache_stats",
    "characterize_arc",
    "characterize_historical_libraries",
    "characterize_historical_library",
    "characterize_library",
    "compute_speedup",
    "default_library",
    "fit_least_squares",
    "get_simulation_cache",
    "get_technology",
    "historical_technologies",
    "learn_class_priors",
    "learn_prior",
    "learn_priors",
    "list_technologies",
    "make_cell",
    "map_estimate",
    "map_estimate_batch",
    "mean_relative_error",
    "nominal_baseline",
    "reduce_cell",
    "reduce_cell_cached",
    "simulate_arc_transition",
    "simulate_arc_transition_adaptive",
    "simulate_arc_transitions",
    "simulate_arc_transitions_adaptive",
    "statistical_baseline",
    "statistical_errors",
    "sweep_conditions",
    "__version__",
]
