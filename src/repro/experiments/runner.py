"""Experiment orchestration: accuracy-versus-training-samples curves.

The paper's key evaluation artefacts (Figs. 6-8) plot the prediction error of
each characterization flow against the number of training samples (fitting
input conditions) it was given, with error bars over cells and RISE/FALL
transitions, and read speedups off those curves ("the LUT needs 15-20x more
samples to reach the same accuracy").  :class:`ExperimentRunner` produces
exactly those curves for the synthetic PDKs, and
:func:`compute_speedup` extracts the headline speedup numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import Cell, TimingArc, Transition
from repro.characterization.input_space import InputCondition, InputSpace
from repro.characterization.lse import LseCharacterizer
from repro.characterization.lut import LutCharacterizer, StatisticalLutCharacterizer
from repro.characterization.metrics import (
    mean_relative_error_percent,
    statistical_errors,
)
from repro.characterization.monte_carlo import nominal_baseline, statistical_baseline
from repro.core.characterizer import BayesianCharacterizer
from repro.core.prior_learning import (
    HistoricalLibraryData,
    TimingPrior,
    characterize_historical_library,
    learn_prior,
    shared_reference_conditions,
)
from repro.core.statistical_flow import StatisticalCharacterizer
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.technology.pdk import historical_technologies
from repro.cells.catalog import DEFAULT_CELL_NAMES, make_cell
from repro.utils.rng import RandomState, ensure_rng

#: Methods understood by the nominal experiment.
NOMINAL_METHODS = ("bayesian", "lse", "lut")
#: Methods understood by the statistical experiment.
STATISTICAL_METHODS = ("bayesian", "lut")
#: Metrics produced by the statistical experiment.
STATISTICAL_METRICS = ("mu_delay", "sigma_delay", "mu_slew", "sigma_slew")


@dataclass(frozen=True)
class AccuracyCurve:
    """Prediction error versus number of training samples for one method.

    Attributes
    ----------
    method:
        Flow name (``"bayesian"``, ``"lse"`` or ``"lut"``).
    metric:
        What the error measures: ``"delay"`` / ``"slew"`` for nominal runs,
        or one of ``mu_delay`` / ``sigma_delay`` / ``mu_slew`` / ``sigma_slew``
        for statistical runs.
    training_sizes:
        Requested numbers of training samples.
    mean_error_percent:
        Error averaged over cells and transitions, one entry per size.
    std_error_percent:
        Standard deviation of the error over cells/transitions (the paper's
        error bars).
    simulation_runs:
        Average simulator invocations actually spent per arc at each size
        (for the LUT this is the realized grid size, which may be slightly
        below the requested budget).
    """

    method: str
    metric: str
    training_sizes: Tuple[int, ...]
    mean_error_percent: np.ndarray
    std_error_percent: np.ndarray
    simulation_runs: np.ndarray

    def error_at(self, training_size: int) -> float:
        """Mean error (percent) at one of the evaluated training sizes."""
        sizes = list(self.training_sizes)
        if training_size not in sizes:
            raise KeyError(f"training size {training_size} was not evaluated")
        return float(self.mean_error_percent[sizes.index(training_size)])

    def runs_to_reach(self, target_error_percent: float) -> Optional[float]:
        """Smallest simulated-run budget achieving the target error, or ``None``."""
        achieved = np.nonzero(self.mean_error_percent <= target_error_percent)[0]
        if achieved.size == 0:
            return None
        return float(np.min(self.simulation_runs[achieved]))

    def rows(self) -> List[Tuple[int, float, float, float]]:
        """Table rows ``(size, mean%, std%, runs)`` for report printing."""
        return [(int(size), float(mean), float(std), float(runs))
                for size, mean, std, runs in zip(self.training_sizes,
                                                 self.mean_error_percent,
                                                 self.std_error_percent,
                                                 self.simulation_runs)]


@dataclass(frozen=True)
class SpeedupSummary:
    """Simulation-run speedup of one method over another at equal accuracy."""

    fast_method: str
    slow_method: str
    metric: str
    target_error_percent: float
    fast_runs: float
    slow_runs: float

    @property
    def speedup(self) -> float:
        """``slow_runs / fast_runs``."""
        return self.slow_runs / self.fast_runs

    def describe(self) -> str:
        """One-line textual summary."""
        return (f"{self.metric}: {self.fast_method} reaches "
                f"{self.target_error_percent:.1f}% with {self.fast_runs:.0f} runs vs "
                f"{self.slow_runs:.0f} for {self.slow_method} "
                f"({self.speedup:.1f}x fewer simulations)")


def compute_speedup(fast: AccuracyCurve, slow: AccuracyCurve,
                    target_error_percent: Optional[float] = None
                    ) -> Optional[SpeedupSummary]:
    """Speedup of ``fast`` over ``slow`` at equal accuracy.

    If no target error is given, the loosest error both methods can reach is
    used (so the comparison is always feasible).  Returns ``None`` when one
    of the methods never reaches the target.
    """
    if target_error_percent is None:
        target_error_percent = float(max(fast.mean_error_percent.min(),
                                         slow.mean_error_percent.min()))
    fast_runs = fast.runs_to_reach(target_error_percent)
    slow_runs = slow.runs_to_reach(target_error_percent)
    if fast_runs is None or slow_runs is None:
        return None
    return SpeedupSummary(fast_method=fast.method, slow_method=slow.method,
                          metric=fast.metric,
                          target_error_percent=target_error_percent,
                          fast_runs=fast_runs, slow_runs=slow_runs)


class ExperimentRunner:
    """Runs the paper's accuracy-versus-samples experiments on one technology."""

    def __init__(
        self,
        technology: TechnologyNode,
        cells: Optional[Sequence[Cell]] = None,
        transitions: Sequence[Transition] = (Transition.FALL, Transition.RISE),
        historical: Optional[Sequence[HistoricalLibraryData]] = None,
        n_validation: int = 100,
        n_reference_conditions: int = 24,
        rng: RandomState = 0,
        counter: Optional[SimulationCounter] = None,
    ):
        self._technology = technology
        self._cells = list(cells) if cells is not None else [
            make_cell(name) for name in DEFAULT_CELL_NAMES]
        self._transitions = tuple(Transition(t) for t in transitions)
        self._rng = ensure_rng(rng)
        self._counter = counter if counter is not None else SimulationCounter()
        self._space = InputSpace(technology)
        self._validation = self._space.sample_random(n_validation, self._rng)

        if historical is None:
            unit_conditions = shared_reference_conditions(n_reference_conditions)
            historical = [
                characterize_historical_library(node, self._cells,
                                                unit_conditions=unit_conditions,
                                                counter=self._counter)
                for node in historical_technologies(exclude=technology.name)
            ]
        self._historical = list(historical)
        self._delay_prior = learn_prior(self._historical, response="delay")
        self._slew_prior = learn_prior(self._historical, response="slew")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def technology(self) -> TechnologyNode:
        """The target technology."""
        return self._technology

    @property
    def counter(self) -> SimulationCounter:
        """Simulation-run accounting shared by all flows."""
        return self._counter

    @property
    def validation_conditions(self) -> List[InputCondition]:
        """The random validation set (Fig. 5 workload)."""
        return list(self._validation)

    @property
    def delay_prior(self) -> TimingPrior:
        """The learned delay prior."""
        return self._delay_prior

    @property
    def slew_prior(self) -> TimingPrior:
        """The learned slew prior."""
        return self._slew_prior

    def arcs(self) -> List[Tuple[Cell, TimingArc]]:
        """The (cell, arc) pairs evaluated by the experiments."""
        pairs = []
        for cell in self._cells:
            for transition in self._transitions:
                pairs.append((cell, cell.arc(cell.input_pins[0], transition)))
        return pairs

    # ------------------------------------------------------------------
    # Nominal experiment (Fig. 6)
    # ------------------------------------------------------------------
    def nominal_curves(self, training_sizes: Sequence[int],
                       methods: Sequence[str] = NOMINAL_METHODS,
                       response: str = "delay") -> Dict[str, AccuracyCurve]:
        """Error-versus-samples curves for nominal characterization.

        Parameters
        ----------
        training_sizes:
            Numbers of fitting samples to evaluate (the paper uses
            1, 2, 3, 5, 10, 20, 50, 100).
        methods:
            Subset of ``("bayesian", "lse", "lut")``.
        response:
            ``"delay"`` or ``"slew"``.
        """
        if response not in ("delay", "slew"):
            raise ValueError("response must be 'delay' or 'slew'")
        for method in methods:
            if method not in NOMINAL_METHODS:
                raise ValueError(f"unknown nominal method {method!r}")
        training_sizes = tuple(int(size) for size in training_sizes)

        baselines = {}
        for cell, arc in self.arcs():
            baseline = nominal_baseline(cell, self._technology, self._validation,
                                        arc=arc, counter=self._counter)
            reference = baseline.delay if response == "delay" else baseline.slew
            baselines[arc.name] = (cell, arc, reference)

        curves: Dict[str, AccuracyCurve] = {}
        for method in methods:
            mean_errors, std_errors, runs = [], [], []
            for size in training_sizes:
                errors, arc_runs = [], []
                for cell, arc, reference in baselines.values():
                    prediction, used_runs = self._nominal_predict(
                        method, cell, arc, size, response)
                    errors.append(mean_relative_error_percent(prediction, reference))
                    arc_runs.append(used_runs)
                mean_errors.append(float(np.mean(errors)))
                std_errors.append(float(np.std(errors)))
                runs.append(float(np.mean(arc_runs)))
            curves[method] = AccuracyCurve(
                method=method, metric=response, training_sizes=training_sizes,
                mean_error_percent=np.array(mean_errors),
                std_error_percent=np.array(std_errors),
                simulation_runs=np.array(runs))
        return curves

    def _nominal_predict(self, method: str, cell: Cell, arc: TimingArc,
                         size: int, response: str) -> Tuple[np.ndarray, int]:
        fit_rng = ensure_rng(self._rng.integers(0, 2 ** 31))
        if method == "bayesian":
            characterizer = BayesianCharacterizer(
                self._technology, cell, self._delay_prior, self._slew_prior,
                arc=arc, counter=self._counter)
            characterizer.fit(size, rng=fit_rng)
            runs = characterizer.result.simulation_runs
            prediction = (characterizer.predict_delay(self._validation)
                          if response == "delay"
                          else characterizer.predict_slew(self._validation))
            return prediction, runs
        if method == "lse":
            characterizer = LseCharacterizer(self._technology, cell, arc=arc,
                                             counter=self._counter)
            characterizer.fit(size, rng=fit_rng)
            prediction = (characterizer.predict_delay(self._validation)
                          if response == "delay"
                          else characterizer.predict_slew(self._validation))
            return prediction, characterizer.simulation_runs
        characterizer = LutCharacterizer(self._technology, cell, arc=arc,
                                         counter=self._counter)
        characterizer.build(size)
        prediction = (characterizer.predict_delay(self._validation)
                      if response == "delay"
                      else characterizer.predict_slew(self._validation))
        return prediction, characterizer.simulation_runs

    # ------------------------------------------------------------------
    # Statistical experiment (Figs. 7-8)
    # ------------------------------------------------------------------
    def statistical_curves(self, training_sizes: Sequence[int],
                           n_seeds: int = 200,
                           methods: Sequence[str] = STATISTICAL_METHODS,
                           ) -> Dict[Tuple[str, str], AccuracyCurve]:
        """Error-versus-samples curves for statistical characterization.

        Returns a dictionary keyed by ``(method, metric)`` with metric in
        ``("mu_delay", "sigma_delay", "mu_slew", "sigma_slew")``.  The same
        Monte Carlo seeds are shared by the baseline, the proposed flow and
        the LUT flow so that differences reflect the flows, not sampling
        noise.
        """
        for method in methods:
            if method not in STATISTICAL_METHODS:
                raise ValueError(f"unknown statistical method {method!r}")
        training_sizes = tuple(int(size) for size in training_sizes)
        variation = self._technology.variation.sample(n_seeds, self._rng)

        baselines = {}
        for cell, arc in self.arcs():
            baseline = statistical_baseline(cell, self._technology, self._validation,
                                            variation, arc=arc, counter=self._counter)
            baselines[arc.name] = (cell, arc, baseline.statistics())

        curves: Dict[Tuple[str, str], AccuracyCurve] = {}
        for method in methods:
            per_metric_errors = {metric: [] for metric in STATISTICAL_METRICS}
            per_metric_std = {metric: [] for metric in STATISTICAL_METRICS}
            run_counts = []
            for size in training_sizes:
                errors_by_metric = {metric: [] for metric in STATISTICAL_METRICS}
                arc_runs = []
                for cell, arc, reference in baselines.values():
                    predicted, used_runs = self._statistical_predict(
                        method, cell, arc, size, variation)
                    arc_runs.append(used_runs)
                    delay_err = statistical_errors(predicted["mu_delay"],
                                                   predicted["sigma_delay"],
                                                   reference["mu_delay"],
                                                   reference["sigma_delay"])
                    slew_err = statistical_errors(predicted["mu_slew"],
                                                  predicted["sigma_slew"],
                                                  reference["mu_slew"],
                                                  reference["sigma_slew"])
                    errors_by_metric["mu_delay"].append(delay_err.relative_mu_percent)
                    errors_by_metric["sigma_delay"].append(delay_err.relative_sigma_percent)
                    errors_by_metric["mu_slew"].append(slew_err.relative_mu_percent)
                    errors_by_metric["sigma_slew"].append(slew_err.relative_sigma_percent)
                for metric in STATISTICAL_METRICS:
                    per_metric_errors[metric].append(float(np.mean(errors_by_metric[metric])))
                    per_metric_std[metric].append(float(np.std(errors_by_metric[metric])))
                run_counts.append(float(np.mean(arc_runs)))
            for metric in STATISTICAL_METRICS:
                curves[(method, metric)] = AccuracyCurve(
                    method=method, metric=metric, training_sizes=training_sizes,
                    mean_error_percent=np.array(per_metric_errors[metric]),
                    std_error_percent=np.array(per_metric_std[metric]),
                    simulation_runs=np.array(run_counts))
        return curves

    def _statistical_predict(self, method: str, cell: Cell, arc: TimingArc,
                             size: int, variation) -> Tuple[Dict[str, np.ndarray], int]:
        if method == "bayesian":
            characterizer = StatisticalCharacterizer(
                self._technology, cell, self._delay_prior, self._slew_prior,
                arc=arc, n_seeds=variation.n_seeds, counter=self._counter)
            characterizer.use_variation(variation)
            result = characterizer.characterize(
                size, rng=ensure_rng(self._rng.integers(0, 2 ** 31)))
            return result.predict_statistics(self._validation), result.simulation_runs
        characterizer = StatisticalLutCharacterizer(
            self._technology, cell, variation, arc=arc, counter=self._counter)
        characterizer.build(size)
        return (characterizer.predict_statistics(self._validation),
                characterizer.simulation_runs)
