"""Accuracy-versus-simulation-budget score matrix across integration engines.

The integrator benchmark (``benchmarks/test_perf_integrator.py``) proves the
adaptive engine is *cheaper*; this module proves the speed was not bought
with the paper's accuracy claims.  It runs every characterization method the
paper compares -- the LUT and LSE baselines, the brute-force per-condition
Monte Carlo flow, and the proposed MAP/Bayesian flow -- under every named
engine configuration (fixed-step RK4, adaptive RK45 at one or more
tolerance settings) and at several simulation budgets, scoring each
``(method, engine, budget)`` cell against one engine-independent reference:
a 16x-refined fixed-step simulation of the validation set.

The result is a :class:`ScoreMatrix` whose rows carry both the accuracy
(mean relative delay error against the refined reference) and the cost
(simulation runs charged, plus the integration-step/RHS-evaluation counts
of the engine itself from the :class:`~repro.runtime.accounting.RunLedger`),
so "no accuracy loss" is a table lookup, not a judgement call:
``matrix.accuracy_loss(method)`` is the worst error increase of any
adaptive configuration over the fixed-step engine at the same budget.

Engine configurations are applied through
``runtime.configure(transient_engine=..., transient_rtol=...,
transient_atol_frac=...)`` -- the same knobs users reach for -- and the
global simulation cache is cleared between configurations so every cell
is measured, not replayed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.runtime as runtime
from repro.cells.library import Cell, Transition
from repro.characterization.input_space import InputCondition, InputSpace
from repro.characterization.lut import LutCharacterizer
from repro.characterization.lse import LseCharacterizer
from repro.core.characterizer import BayesianCharacterizer
from repro.core.prior_learning import (
    characterize_historical_library,
    learn_prior,
    shared_reference_conditions,
)
from repro.runtime.accounting import RunLedger
from repro.spice.stepper import StepperSpec
from repro.spice.sweep import sweep_conditions
from repro.spice.transient import DEFAULT_STEPS
from repro.technology.node import TechnologyNode
from repro.technology.pdk import get_technology
from repro.cells.catalog import make_cell
from repro.utils.rng import RandomState, ensure_rng

#: Methods scored by the matrix.  ``mc`` is the brute-force flow that
#: simulates every validation condition directly (its budget is the
#: validation-set size); the rest fit a model from ``training_size``
#: simulated conditions and predict the validation set analytically.
SCORE_METHODS = ("lut", "lse", "mc", "map")


@dataclass(frozen=True)
class EngineConfig:
    """One named integration-engine column of the score matrix."""

    label: str
    engine: str
    rtol: Optional[float] = None
    atol_frac: Optional[float] = None


#: Default engine columns: the historical fixed-step engine, the adaptive
#: engine at its engine-equivalence default tolerance, and a deliberately
#: loose adaptive setting that shows what tolerance money actually buys.
DEFAULT_ENGINE_CONFIGS = (
    EngineConfig("rk4-400", "batched"),
    EngineConfig("rk45-1e-9", "adaptive", rtol=1e-9, atol_frac=1e-9),
    EngineConfig("rk45-1e-6", "adaptive", rtol=1e-6, atol_frac=1e-6),
)


@dataclass(frozen=True)
class ScoreCell:
    """One ``(method, engine, budget)`` measurement."""

    method: str
    engine: str
    training_size: int
    simulation_runs: int
    error_percent: float
    seconds: float
    transient_steps: int = 0
    transient_steps_rejected: int = 0
    transient_rhs_evals: int = 0


@dataclass
class ScoreMatrix:
    """The full accuracy-versus-budget score matrix."""

    technology: str
    n_validation: int
    reference_steps: int
    cells: Tuple[str, ...]
    rows: List[ScoreCell] = field(default_factory=list)

    def row(self, method: str, engine: str,
            training_size: Optional[int] = None) -> ScoreCell:
        """The single matching row (methods without a budget axis omit it)."""
        for entry in self.rows:
            if entry.method == method and entry.engine == engine and (
                    training_size is None
                    or entry.training_size == training_size):
                return entry
        raise KeyError(f"no row ({method}, {engine}, {training_size})")

    def accuracy_loss(self, method: str,
                      baseline_engine: str = "rk4-400") -> float:
        """Worst error increase (percentage points) of any non-baseline
        engine over ``baseline_engine`` at the same budget, for ``method``.

        Negative values mean every other engine was at least as accurate.
        """
        baseline = {(r.training_size): r.error_percent for r in self.rows
                    if r.method == method and r.engine == baseline_engine}
        if not baseline:
            raise KeyError(f"no baseline rows for method {method!r}")
        worst = -np.inf
        for entry in self.rows:
            if entry.method != method or entry.engine == baseline_engine:
                continue
            worst = max(worst, entry.error_percent
                        - baseline[entry.training_size])
        return float(worst)

    def table(self) -> str:
        """Fixed-width text rendering (for artifacts and the summary)."""
        header = (f"{'method':<6} {'engine':<12} {'budget':>6} "
                  f"{'runs':>6} {'err%':>10} {'steps':>8} {'rejected':>8} "
                  f"{'rhs evals':>10} {'seconds':>8}")
        lines = [header, "-" * len(header)]
        for entry in self.rows:
            lines.append(
                f"{entry.method:<6} {entry.engine:<12} "
                f"{entry.training_size:>6d} {entry.simulation_runs:>6d} "
                f"{entry.error_percent:>10.4f} {entry.transient_steps:>8d} "
                f"{entry.transient_steps_rejected:>8d} "
                f"{entry.transient_rhs_evals:>10d} {entry.seconds:>8.3f}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready view (written by the benchmark harness)."""
        return {
            "technology": self.technology,
            "n_validation": self.n_validation,
            "reference_steps": self.reference_steps,
            "cells": list(self.cells),
            "rows": [vars(entry) for entry in self.rows],
        }


def score_matrix(
    technology: Optional[TechnologyNode] = None,
    cells: Optional[Sequence[Cell]] = None,
    training_sizes: Sequence[int] = (4, 8),
    n_validation: int = 12,
    engines: Sequence[EngineConfig] = DEFAULT_ENGINE_CONFIGS,
    reference_refinement: int = 16,
    rng: RandomState = 0,
) -> ScoreMatrix:
    """Score every method under every engine configuration.

    Parameters
    ----------
    technology:
        Target node (default ``n28_bulk``).
    cells:
        Cells whose first falling arc is scored (default INV_X1, NAND2_X1).
    training_sizes:
        Simulation budgets (fitting conditions) for the model-based methods
        (``lut`` / ``lse`` / ``map``); ``mc`` always spends one run per
        validation condition.  Budgets below the compact model's four
        parameters leave the LSE fit underdetermined -- its error is then
        dominated by fit sensitivity, not by anything the integrator did --
        so engine comparisons should use sizes of at least 4.
    n_validation:
        Validation conditions scored against the refined reference.
    engines:
        Engine columns; applied through ``runtime.configure``.
    reference_refinement:
        Step multiplier of the fixed-step reference simulation (16x the
        nominal 400 steps by default -- well inside the regime where the
        fixed engine has converged past every error this matrix measures).
    rng:
        Seed for the validation/fitting samples.  The same validation set
        and per-(method, budget) fitting seeds are reused for every engine,
        so columns differ only by the integrator.
    """
    technology = (technology if technology is not None
                  else get_technology("n28_bulk"))
    cells = (list(cells) if cells is not None
             else [make_cell("INV_X1"), make_cell("NAND2_X1")])
    training_sizes = tuple(int(size) for size in training_sizes)
    master = ensure_rng(rng)

    space = InputSpace(technology)
    validation: List[InputCondition] = space.sample_lhs(n_validation, master)
    triples = [c.as_tuple() for c in validation]
    arcs = [(cell, cell.arc(cell.input_pins[0], Transition.FALL))
            for cell in cells]

    # MAP needs a learned prior; one historical node is enough for scoring.
    unit_conditions = shared_reference_conditions(8, rng=7)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"), cells, unit_conditions=unit_conditions,
        transitions=(Transition.FALL,))]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    # One engine-independent truth: a refined fixed-step simulation.
    reference_steps = reference_refinement * DEFAULT_STEPS
    reference_stepper = StepperSpec(method="rk4", n_steps=reference_steps)
    reference: Dict[str, np.ndarray] = {}
    for cell, arc in arcs:
        measurements = sweep_conditions(
            cell, technology, triples, arc=arc, engine="batched",
            stepper=reference_stepper, cache=False)
        reference[cell.name] = np.array(
            [m.nominal_delay() for m in measurements])

    # Per-(method, budget) fitting seeds, fixed across engines.
    fit_seeds = {(method, size): int(master.integers(0, 2 ** 31))
                 for method in SCORE_METHODS for size in training_sizes}

    config = runtime.runtime_config()
    saved = (config.transient_engine, config.transient_rtol,
             config.transient_atol_frac)
    matrix = ScoreMatrix(technology=technology.name,
                         n_validation=n_validation,
                         reference_steps=reference_steps,
                         cells=tuple(cell.name for cell in cells))
    try:
        for engine_config in engines:
            runtime.configure(transient_engine=engine_config.engine,
                              transient_rtol=engine_config.rtol,
                              transient_atol_frac=engine_config.atol_frac)
            runtime.get_registered_cache("simulation").clear()
            for method in SCORE_METHODS:
                sizes = training_sizes if method != "mc" else (n_validation,)
                for size in sizes:
                    matrix.rows.append(_score_one(
                        method, engine_config.label, size, technology, arcs,
                        validation, triples, reference, delay_prior,
                        slew_prior, fit_seeds))
    finally:
        runtime.configure(transient_engine=saved[0], transient_rtol=saved[1],
                          transient_atol_frac=saved[2])
    return matrix


def _score_one(method: str, engine_label: str, size: int,
               technology: TechnologyNode, arcs, validation, triples,
               reference, delay_prior, slew_prior, fit_seeds) -> ScoreCell:
    """One matrix cell: fit (or sweep) every arc, score against the truth."""
    ledger = RunLedger()
    errors: List[float] = []
    runs = 0
    start = time.perf_counter()
    for cell, arc in arcs:
        truth = reference[cell.name]
        if method == "mc":
            measurements = sweep_conditions(cell, technology, triples,
                                            arc=arc, cache=False,
                                            ledger=ledger)
            predicted = np.array([m.nominal_delay() for m in measurements])
            runs += len(triples)
        else:
            fit_rng = ensure_rng(fit_seeds[(method, size)])
            if method == "lut":
                characterizer = LutCharacterizer(technology, cell, arc=arc)
                characterizer.build(size)
            elif method == "lse":
                characterizer = LseCharacterizer(technology, cell, arc=arc)
                characterizer.fit(size, rng=fit_rng)
            else:
                characterizer = BayesianCharacterizer(
                    technology, cell, delay_prior, slew_prior, arc=arc)
                characterizer.fit(size, rng=fit_rng)
            predicted = np.asarray(characterizer.predict_delay(validation))
            runs += int(getattr(characterizer, "simulation_runs", size)
                        if method != "map"
                        else characterizer.result.simulation_runs)
        errors.append(float(np.mean(np.abs(predicted / truth - 1.0))) * 100.0)
    seconds = time.perf_counter() - start
    metrics = ledger.metrics()
    return ScoreCell(
        method=method, engine=engine_label, training_size=int(size),
        simulation_runs=int(runs),
        error_percent=float(np.mean(errors)), seconds=round(seconds, 4),
        transient_steps=int(metrics.get("transient_steps", 0)),
        transient_steps_rejected=int(
            metrics.get("transient_steps_rejected", 0)),
        transient_rhs_evals=int(metrics.get("transient_rhs_evals", 0)))
