"""Experiment orchestration for the paper's evaluation section.

This package sits above both :mod:`repro.core` (the proposed flow) and
:mod:`repro.characterization` (the baselines) and produces the artefacts the
paper reports: accuracy-versus-training-samples curves with error bars over
cells and transitions (Figs. 6-8), and the simulation-run speedups read off
those curves.
"""

from repro.experiments.runner import (
    AccuracyCurve,
    ExperimentRunner,
    NOMINAL_METHODS,
    STATISTICAL_METHODS,
    STATISTICAL_METRICS,
    SpeedupSummary,
    compute_speedup,
)
from repro.experiments.score_matrix import (
    DEFAULT_ENGINE_CONFIGS,
    EngineConfig,
    SCORE_METHODS,
    ScoreCell,
    ScoreMatrix,
    score_matrix,
)

__all__ = [
    "AccuracyCurve",
    "DEFAULT_ENGINE_CONFIGS",
    "EngineConfig",
    "ExperimentRunner",
    "NOMINAL_METHODS",
    "SCORE_METHODS",
    "STATISTICAL_METHODS",
    "STATISTICAL_METRICS",
    "ScoreCell",
    "ScoreMatrix",
    "SpeedupSummary",
    "compute_speedup",
    "score_matrix",
]
