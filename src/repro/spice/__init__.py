"""Transistor-level transient circuit simulation.

This package is the reproduction's stand-in for the HSPICE + BSIM design-kit
simulations of the paper.  It integrates the output-node differential
equation of an equivalent inverter driven by a voltage ramp, vectorized over
Monte Carlo process seeds, and measures propagation delay and output
transition time from the resulting waveforms.

Layering note: this package sits *below* :mod:`repro.characterization`; it
speaks plain ``(sin, cload, vdd)`` floats rather than the higher-level
``InputCondition`` objects.
"""

from repro.spice.waveform import (
    DELAY_THRESHOLD,
    SLEW_DERATE,
    SLEW_HIGH_THRESHOLD,
    SLEW_LOW_THRESHOLD,
    Waveform,
)
from repro.spice.stimulus import RampStimulus
from repro.spice.transient import TransientResult, simulate_arc_transition
from repro.spice.testbench import (
    SimulationCounter,
    TimingMeasurement,
    characterize_arc,
    characterize_cell_nominal,
)
from repro.spice.sweep import sweep_conditions

__all__ = [
    "DELAY_THRESHOLD",
    "RampStimulus",
    "SLEW_DERATE",
    "SLEW_HIGH_THRESHOLD",
    "SLEW_LOW_THRESHOLD",
    "SimulationCounter",
    "TimingMeasurement",
    "TransientResult",
    "Waveform",
    "characterize_arc",
    "characterize_cell_nominal",
    "simulate_arc_transition",
    "sweep_conditions",
]
