"""Transistor-level transient circuit simulation.

This package is the reproduction's stand-in for the HSPICE + BSIM design-kit
simulations of the paper.  It integrates the output-node differential
equation of an equivalent inverter driven by a voltage ramp, vectorized over
Monte Carlo process seeds, and measures propagation delay and output
transition time from the resulting waveforms.

Layering note: this package sits *below* :mod:`repro.characterization`; it
speaks plain ``(sin, cload, vdd)`` floats rather than the higher-level
``InputCondition`` objects.
"""

from repro.spice.waveform import (
    DELAY_THRESHOLD,
    SLEW_DERATE,
    SLEW_HIGH_THRESHOLD,
    SLEW_LOW_THRESHOLD,
    Waveform,
    WaveformBatch,
)
from repro.spice.stimulus import RampStimulus
from repro.spice.transient import TransientResult, simulate_arc_transition
from repro.spice.batch import BatchTransientResult, simulate_arc_transitions
from repro.spice.stepper import (
    DEFAULT_ATOL_FRAC,
    DEFAULT_RTOL,
    IntegrationStats,
    StepperSpec,
)
from repro.spice.adaptive import (
    simulate_arc_transition_adaptive,
    simulate_arc_transitions_adaptive,
)
from repro.spice.testbench import (
    SimulationCache,
    SimulationCounter,
    TimingMeasurement,
    characterize_arc,
    characterize_cell_nominal,
    get_simulation_cache,
)
from repro.spice.sweep import sweep_conditions

__all__ = [
    "BatchTransientResult",
    "DEFAULT_ATOL_FRAC",
    "DEFAULT_RTOL",
    "DELAY_THRESHOLD",
    "IntegrationStats",
    "RampStimulus",
    "StepperSpec",
    "SLEW_DERATE",
    "SLEW_HIGH_THRESHOLD",
    "SLEW_LOW_THRESHOLD",
    "SimulationCache",
    "SimulationCounter",
    "TimingMeasurement",
    "TransientResult",
    "Waveform",
    "WaveformBatch",
    "characterize_arc",
    "characterize_cell_nominal",
    "get_simulation_cache",
    "simulate_arc_transition",
    "simulate_arc_transition_adaptive",
    "simulate_arc_transitions",
    "simulate_arc_transitions_adaptive",
    "sweep_conditions",
]
