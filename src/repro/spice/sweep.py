"""Batched condition sweeps (the ``.ALTER`` analogue).

The paper batches per-seed simulations with SPICE ``.ALTER`` statements so
each netlist is elaborated once and re-simulated for every process seed.  In
this reproduction the analogue is a sweep that reduces the cell to its
equivalent inverter once per seed batch and then integrates every requested
``(Sin, Cload, Vdd)`` condition against it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cells.equivalent_inverter import reduce_cell
from repro.cells.library import Cell, TimingArc
from repro.spice.testbench import SimulationCounter, TimingMeasurement
from repro.spice.transient import DEFAULT_STEPS, simulate_arc_transition
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


def sweep_conditions(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[Sequence[float]],
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
    counter_label: Optional[str] = None,
) -> List[TimingMeasurement]:
    """Simulate one arc across a list of operating points.

    Parameters
    ----------
    cell, technology, arc, variation, n_steps:
        As in :func:`repro.spice.testbench.characterize_arc`.
    conditions:
        Sequence of ``(sin, cload, vdd)`` triples.
    counter, counter_label:
        Optional simulation-run accounting; each condition charges one run
        per seed.

    Returns
    -------
    list of TimingMeasurement
        One measurement per condition, in the input order.
    """
    conditions = [tuple(float(value) for value in condition) for condition in conditions]
    for condition in conditions:
        if len(condition) != 3:
            raise ValueError(
                f"conditions must be (sin, cload, vdd) triples, got {condition}"
            )

    inverter = reduce_cell(cell, technology, arc=arc, variation=variation)
    label = counter_label or f"sweep:{cell.name}"
    measurements: List[TimingMeasurement] = []
    for sin, cload, vdd in conditions:
        result = simulate_arc_transition(inverter, sin=sin, cload=cload, vdd=vdd,
                                         n_steps=n_steps)
        delay = result.delay()
        slew = result.output_slew()
        if counter is not None:
            counter.add(delay.size, label=label)
        measurements.append(
            TimingMeasurement(
                cell_name=cell.name,
                arc=inverter.arc,
                sin=sin,
                cload=cload,
                vdd=vdd,
                delay=np.asarray(delay, dtype=float),
                output_slew=np.asarray(slew, dtype=float),
            )
        )
    return measurements
