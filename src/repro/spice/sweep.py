"""Batched condition sweeps (the ``.ALTER`` analogue).

The paper batches per-seed simulations with SPICE ``.ALTER`` statements so
each netlist is elaborated once and re-simulated for every process seed.  In
this reproduction the analogue goes one step further: the cell is reduced to
its equivalent inverter once per seed batch (memoized across sweeps) and
*every* requested ``(Sin, Cload, Vdd)`` condition is integrated in a single
pass of the batched transient engine (:mod:`repro.spice.batch`), with the
per-condition results memoized in the global
:class:`~repro.spice.testbench.SimulationCache` so repeated operating points
are never simulated twice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cells.equivalent_inverter import default_arc, reduce_cell_cached
from repro.cells.library import Cell, TimingArc
from repro.runtime import (
    TRANSIENT_ENGINES,
    resolve_max_bytes,
    resolve_transient_engine,
)
from repro.runtime.accounting import RunLedger
from repro.runtime.chunking import plan_chunks
from repro.spice.adaptive import simulate_arc_transitions_adaptive
from repro.spice.batch import simulate_arc_transitions, transient_item_bytes
from repro.spice.stepper import IntegrationStats, StepperSpec, resolve_stepper
from repro.spice.testbench import (
    SimulationCache,
    SimulationCounter,
    TimingMeasurement,
    get_simulation_cache,
)
from repro.spice.transient import DEFAULT_STEPS, simulate_arc_transition
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample

#: Engines selectable in :func:`sweep_conditions` (the runtime layer owns
#: the canonical tuple so ``runtime.configure(transient_engine=...)`` can
#: validate without importing the engines).
ENGINES = TRANSIENT_ENGINES


def record_integration_stats(ledger: Optional[RunLedger],
                             stats: Optional[IntegrationStats]) -> None:
    """Add one batch's integration cost to a ledger's metrics (if both exist).

    The three metrics sum across batches, chunks and merged worker ledgers,
    so a flow-level ledger reports the total integration effort of the run:
    ``transient_steps`` / ``transient_steps_rejected`` count per-condition
    step attempts and ``transient_rhs_evals`` counts scalar derivative
    evaluations (directly comparable across engines).
    """
    if ledger is None or stats is None:
        return
    ledger.add_metric("transient_steps", stats.steps_taken)
    ledger.add_metric("transient_steps_rejected", stats.steps_rejected)
    ledger.add_metric("transient_rhs_evals", stats.rhs_evals)


def sweep_conditions(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[Sequence[float]],
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
    counter_label: Optional[str] = None,
    engine: Optional[str] = None,
    cache: bool = True,
    max_bytes: Optional[int] = None,
    stepper: Optional[StepperSpec] = None,
    ledger: Optional[RunLedger] = None,
) -> List[TimingMeasurement]:
    """Simulate one arc across a list of operating points.

    Parameters
    ----------
    cell, technology, arc, variation, n_steps:
        As in :func:`repro.spice.testbench.characterize_arc`.
    conditions:
        Sequence of ``(sin, cload, vdd)`` triples.
    counter, counter_label:
        Optional simulation-run accounting; each condition charges one run
        per seed.  Runs are charged even when the simulation cache hits --
        counters measure what a flow *requires*, the cache only saves
        wall-clock time.
    engine:
        ``"batched"`` integrates every condition in one 2-D fixed-step RK4
        pass; ``"serial"`` integrates condition by condition through the
        original engine (kept for equivalence testing; it never touches
        the simulation cache -- a serial sweep must actually run the
        serial integrator, not replay memoized batched results);
        ``"adaptive"`` integrates every condition in one batched
        error-controlled RK45 pass (:mod:`repro.spice.adaptive`).  ``None``
        (default) defers to ``runtime.configure(transient_engine=...)`` /
        ``REPRO_TRANSIENT_ENGINE``, falling back to ``"batched"``.
    cache:
        Whether to consult/fill the global simulation cache (batched and
        adaptive engines; ignored for ``engine="serial"``).  Keys embed
        the full stepper signature, so fixed-step and adaptive results
        never collide.  A sweep whose conditions all hit short-circuits
        straight to measurement assembly -- no equivalent-inverter
        reduction, no batched simulation plan.
    max_bytes:
        Memory budget for the batched engines' waveform matrices; uncached
        conditions are split into deterministic chunks integrated one after
        the other (conditions are independent, so the per-condition results
        are identical to the one-pass batch -- for the adaptive engine each
        row's step-size controller is fully row-local, so this holds
        bit-for-bit there too).  ``None`` defers to
        ``repro.runtime.configure(max_bytes=...)``.
    stepper:
        Explicit :class:`~repro.spice.stepper.StepperSpec` overriding the
        resolved engine's default scheme (e.g. adaptive at non-default
        tolerances).  Must be consistent with the engine: ``"rk45"`` for
        the adaptive engine, ``"rk4"`` otherwise.
    ledger:
        Optional :class:`~repro.runtime.accounting.RunLedger`; integration
        cost (steps taken/rejected, scalar RHS evaluations) of the
        conditions actually simulated is accumulated into its metrics.

    Returns
    -------
    list of TimingMeasurement
        One measurement per condition, in the input order.
    """
    engine = resolve_transient_engine(engine)
    if stepper is None:
        stepper = resolve_stepper(engine, n_steps=n_steps)
    expected_method = "rk45" if engine == "adaptive" else "rk4"
    if stepper.method != expected_method:
        raise ValueError(
            f"stepper method {stepper.method!r} is inconsistent with "
            f"engine {engine!r} (expected {expected_method!r})")
    conditions = [tuple(float(value) for value in condition)
                  for condition in conditions]
    for condition in conditions:
        if len(condition) != 3:
            raise ValueError(
                f"conditions must be (sin, cload, vdd) triples, got {condition}"
            )

    label = counter_label or f"sweep:{cell.name}"
    resolved_arc = arc if arc is not None else default_arc(cell)

    simulation_cache = (get_simulation_cache()
                        if cache and engine != "serial" else None)
    variation_fp = (variation.fingerprint() if variation is not None
                    else "nominal")

    n_conditions = len(conditions)
    delays: List[Optional[np.ndarray]] = [None] * n_conditions
    slews: List[Optional[np.ndarray]] = [None] * n_conditions
    keys: List[Optional[tuple]] = [None] * n_conditions

    missing: List[int] = list(range(n_conditions))
    if simulation_cache is not None:
        # One arc-identity prefix for the whole sweep; only the operating
        # point varies per key.
        prefix = SimulationCache.arc_prefix(cell, technology, resolved_arc,
                                            variation_fp)
        missing = []
        for index, (sin, cload, vdd) in enumerate(conditions):
            key = SimulationCache.condition_key(prefix, sin, cload, vdd,
                                                stepper)
            keys[index] = key
            cached = simulation_cache.get(key)
            if cached is not None:
                delays[index], slews[index] = cached
            else:
                missing.append(index)

    if missing:
        # A full cache hit never reaches this point: the equivalent-inverter
        # reduction and the batched simulation plan are only built when at
        # least one condition actually needs integrating.
        inverter = reduce_cell_cached(cell, technology, arc=resolved_arc,
                                      variation=variation)
        if engine in ("batched", "adaptive"):
            triples = np.array([conditions[i] for i in missing], dtype=float)
            n_seeds = variation.n_seeds if variation is not None else 1
            item_bytes = transient_item_bytes(n_seeds, stepper.n_steps)
            # Chunks integrate one after the other and scatter their results
            # immediately, so each chunk's waveform matrices are freed before
            # the next one allocates (the point of the budget).
            for rows in plan_chunks(len(missing), item_bytes,
                                    resolve_max_bytes(max_bytes)):
                if engine == "adaptive":
                    result = simulate_arc_transitions_adaptive(
                        inverter, triples[rows, 0], triples[rows, 1],
                        triples[rows, 2], stepper=stepper)
                else:
                    result = simulate_arc_transitions(
                        inverter, triples[rows, 0], triples[rows, 1],
                        triples[rows, 2], n_steps=stepper.n_steps)
                record_integration_stats(ledger, result.stats)
                batch_delay = result.delay()
                batch_slew = result.output_slew()
                for row, index in enumerate(missing[rows]):
                    delays[index] = np.asarray(batch_delay[row], dtype=float)
                    slews[index] = np.asarray(batch_slew[row], dtype=float)
        else:
            for index in missing:
                sin, cload, vdd = conditions[index]
                result = simulate_arc_transition(inverter, sin=sin,
                                                 cload=cload, vdd=vdd,
                                                 n_steps=stepper.n_steps)
                delays[index] = np.asarray(result.delay(), dtype=float)
                slews[index] = np.asarray(result.output_slew(), dtype=float)
        if simulation_cache is not None:
            for index in missing:
                simulation_cache.put(keys[index], delays[index], slews[index])

    measurements: List[TimingMeasurement] = []
    for index, (sin, cload, vdd) in enumerate(conditions):
        delay = delays[index].reshape(-1)
        slew = slews[index].reshape(-1)
        if counter is not None:
            counter.add(delay.size, label=label)
        measurements.append(
            TimingMeasurement(
                cell_name=cell.name,
                arc=resolved_arc,
                sin=sin,
                cload=cload,
                vdd=vdd,
                delay=delay,
                output_slew=slew,
            )
        )
    return measurements
