"""Batched condition sweeps (the ``.ALTER`` analogue).

The paper batches per-seed simulations with SPICE ``.ALTER`` statements so
each netlist is elaborated once and re-simulated for every process seed.  In
this reproduction the analogue goes one step further: the cell is reduced to
its equivalent inverter once per seed batch (memoized across sweeps) and
*every* requested ``(Sin, Cload, Vdd)`` condition is integrated in a single
pass of the batched transient engine (:mod:`repro.spice.batch`), with the
per-condition results memoized in the global
:class:`~repro.spice.testbench.SimulationCache` so repeated operating points
are never simulated twice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cells.equivalent_inverter import default_arc, reduce_cell_cached
from repro.cells.library import Cell, TimingArc
from repro.runtime import resolve_max_bytes
from repro.runtime.chunking import plan_chunks
from repro.spice.batch import simulate_arc_transitions, transient_item_bytes
from repro.spice.testbench import (
    SimulationCache,
    SimulationCounter,
    TimingMeasurement,
    get_simulation_cache,
)
from repro.spice.transient import DEFAULT_STEPS, simulate_arc_transition
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample

#: Engines selectable in :func:`sweep_conditions`.
ENGINES = ("batched", "serial")


def sweep_conditions(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[Sequence[float]],
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
    counter_label: Optional[str] = None,
    engine: str = "batched",
    cache: bool = True,
    max_bytes: Optional[int] = None,
) -> List[TimingMeasurement]:
    """Simulate one arc across a list of operating points.

    Parameters
    ----------
    cell, technology, arc, variation, n_steps:
        As in :func:`repro.spice.testbench.characterize_arc`.
    conditions:
        Sequence of ``(sin, cload, vdd)`` triples.
    counter, counter_label:
        Optional simulation-run accounting; each condition charges one run
        per seed.  Runs are charged even when the simulation cache hits --
        counters measure what a flow *requires*, the cache only saves
        wall-clock time.
    engine:
        ``"batched"`` (default) integrates every condition in one 2-D RK4
        pass; ``"serial"`` integrates condition by condition through the
        original engine.  Both produce identical results to floating-point
        noise; the serial engine is kept for equivalence testing and
        benchmarking, and therefore never touches the simulation cache --
        a serial sweep must actually run the serial integrator, not replay
        memoized batched results.
    cache:
        Whether to consult/fill the global simulation cache (batched engine
        only; ignored for ``engine="serial"``).  A sweep whose conditions
        all hit short-circuits straight to measurement assembly -- no
        equivalent-inverter reduction, no batched simulation plan.
    max_bytes:
        Memory budget for the batched engine's waveform matrices; uncached
        conditions are split into deterministic chunks integrated one after
        the other (conditions are independent, so the per-condition results
        are identical to the one-pass batch).  ``None`` defers to
        ``repro.runtime.configure(max_bytes=...)``.

    Returns
    -------
    list of TimingMeasurement
        One measurement per condition, in the input order.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    conditions = [tuple(float(value) for value in condition)
                  for condition in conditions]
    for condition in conditions:
        if len(condition) != 3:
            raise ValueError(
                f"conditions must be (sin, cload, vdd) triples, got {condition}"
            )

    label = counter_label or f"sweep:{cell.name}"
    resolved_arc = arc if arc is not None else default_arc(cell)

    simulation_cache = (get_simulation_cache()
                        if cache and engine == "batched" else None)
    variation_fp = (variation.fingerprint() if variation is not None
                    else "nominal")

    n_conditions = len(conditions)
    delays: List[Optional[np.ndarray]] = [None] * n_conditions
    slews: List[Optional[np.ndarray]] = [None] * n_conditions
    keys: List[Optional[tuple]] = [None] * n_conditions

    missing: List[int] = list(range(n_conditions))
    if simulation_cache is not None:
        # One arc-identity prefix for the whole sweep; only the operating
        # point varies per key.
        prefix = SimulationCache.arc_prefix(cell, technology, resolved_arc,
                                            variation_fp)
        missing = []
        for index, (sin, cload, vdd) in enumerate(conditions):
            key = SimulationCache.condition_key(prefix, sin, cload, vdd,
                                                n_steps)
            keys[index] = key
            cached = simulation_cache.get(key)
            if cached is not None:
                delays[index], slews[index] = cached
            else:
                missing.append(index)

    if missing:
        # A full cache hit never reaches this point: the equivalent-inverter
        # reduction and the batched simulation plan are only built when at
        # least one condition actually needs integrating.
        inverter = reduce_cell_cached(cell, technology, arc=resolved_arc,
                                      variation=variation)
        if engine == "batched":
            triples = np.array([conditions[i] for i in missing], dtype=float)
            n_seeds = variation.n_seeds if variation is not None else 1
            item_bytes = transient_item_bytes(n_seeds, n_steps)
            # Chunks integrate one after the other and scatter their results
            # immediately, so each chunk's waveform matrices are freed before
            # the next one allocates (the point of the budget).
            for rows in plan_chunks(len(missing), item_bytes,
                                    resolve_max_bytes(max_bytes)):
                result = simulate_arc_transitions(
                    inverter, triples[rows, 0], triples[rows, 1],
                    triples[rows, 2], n_steps=n_steps)
                batch_delay = result.delay()
                batch_slew = result.output_slew()
                for row, index in enumerate(missing[rows]):
                    delays[index] = np.asarray(batch_delay[row], dtype=float)
                    slews[index] = np.asarray(batch_slew[row], dtype=float)
        else:
            for index in missing:
                sin, cload, vdd = conditions[index]
                result = simulate_arc_transition(inverter, sin=sin,
                                                 cload=cload, vdd=vdd,
                                                 n_steps=n_steps)
                delays[index] = np.asarray(result.delay(), dtype=float)
                slews[index] = np.asarray(result.output_slew(), dtype=float)
        if simulation_cache is not None:
            for index in missing:
                simulation_cache.put(keys[index], delays[index], slews[index])

    measurements: List[TimingMeasurement] = []
    for index, (sin, cload, vdd) in enumerate(conditions):
        delay = delays[index].reshape(-1)
        slew = slews[index].reshape(-1)
        if counter is not None:
            counter.add(delay.size, label=label)
        measurements.append(
            TimingMeasurement(
                cell_name=cell.name,
                arc=resolved_arc,
                sin=sin,
                cload=cload,
                vdd=vdd,
                delay=delay,
                output_slew=slew,
            )
        )
    return measurements
