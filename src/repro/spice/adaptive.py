"""Adaptive error-controlled batched transient engine (Dormand-Prince RK45).

The fixed-step engines (:mod:`repro.spice.transient`,
:mod:`repro.spice.batch`) integrate every condition with the same number of
RK4 steps whatever the dynamics: the post-ramp window carries an 8x safety
margin, so most of the steps are spent long after the output has settled.
This module integrates the same single-node ODE with an embedded
Dormand-Prince 5(4) pair under proportional-integral (PI) step-size
control: each condition takes exactly the steps its own error budget
demands, retires from the batch the moment its transition completes, and
stores the derivative at every accepted sample so downstream measurements
interpolate the non-uniform grid with a cubic Hermite (dense output)
instead of chords.

Design notes:

* **Per-condition error norms, lockstep execution.**  Every condition has
  its own time, step size, PI controller memory and rejection counter, but
  all active conditions advance through one vectorized loop: each
  iteration attempts one step of every active row at that row's own ``h``.
  The error test is the RMS over seeds of the scaled error
  ``|y5 - y4| / (atol + rtol * max(|y|, |y_new|))`` -- one scalar per
  condition -- so a condition is accepted or rejected as a unit and each
  row's step sequence is independent of which other rows share the batch
  (chunked and one-pass sweeps are bit-identical).
* **FSAL.**  The pair's seventh stage is the derivative at the accepted
  point, so an accepted step costs six new RHS evaluations and the stored
  stage doubles as the dense-output derivative of the sample.
* **Phase boundary.**  The ramp-slope discontinuity at ``t = sin`` is kept
  off step interiors by clamping each on-ramp row's step to land exactly
  on its ramp end; the FSAL stage is then corrected by subtracting the
  Miller term (the two one-sided derivatives differ by exactly
  ``C_M dVin/dt / C_tot``), which keeps the controller blind to the kink.
* **Single-allocation workspace.**  All stage buffers, the clamp/current
  scratch of the fused alpha-power kernel, and the sample stores are
  allocated once up front at ``(n_conditions, n_seeds)``; the hot loop
  runs entirely on ``[:n_active]`` views with ``out=`` ufuncs, compacting
  the prefix only when rows retire.
* **Failure semantics.**  A condition that reaches the fixed engines'
  maximum extended horizon without completing, underflows its step size,
  or rejects ``max_rejects`` consecutive attempts (a *rejection storm*,
  injectable at the ``adaptive.reject`` fault site) aborts the batch
  under ``on_failure="raise"`` or is quarantined per row under
  ``on_failure="quarantine"`` -- the same contract as the fixed batched
  engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cells.equivalent_inverter import EquivalentInverter
from repro.cells.library import Transition
from repro.runtime import faultinject
from repro.spice import transient as _serial
from repro.spice.batch import (
    BatchTransientResult,
    SITE_INTEGRATE,
    _alpha_power_params,
    _estimate_windows,
)
from repro.spice.stepper import IntegrationStats, StepperSpec
from repro.spice.transient import TransientResult
from repro.spice.waveform import (
    SLEW_HIGH_THRESHOLD,
    SLEW_LOW_THRESHOLD,
    WaveformBatch,
)

SITE_REJECT = faultinject.register_fault_site(
    "adaptive.reject",
    "per-iteration error norms of the adaptive stepper (NaN row faults "
    "force step rejections; a sustained schedule is a rejection storm)")

# Dormand-Prince 5(4) tableau.  _B is the fifth-order solution row (the
# seventh stage row of A, FSAL), _E = b5 - b4 weights the embedded error.
_C2, _C3, _C4, _C5, _C6 = 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0
_A = (
    (1.0 / 5.0,),
    (3.0 / 40.0, 9.0 / 40.0),
    (44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0),
    (19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0),
    (9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0,
     -5103.0 / 18656.0),
)
_B = (35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0,
      11.0 / 84.0)
_E = (71.0 / 57600.0, 0.0, -71.0 / 16695.0, 71.0 / 1920.0,
      -17253.0 / 339200.0, 22.0 / 525.0, -1.0 / 40.0)

#: Initial step: a fixed fraction of each condition's ramp, so adaptive
#: results do not depend on the fixed-step ``n_steps`` hint at all.
_H0_RAMP_FRACTION = 1.0 / 16.0
#: Error floor applied before controller exponentiation (an exactly-zero
#: error estimate must still produce a bounded growth factor).
_ERR_FLOOR = 1e-10
#: Step-size underflow threshold as a fraction of the condition's horizon.
_H_UNDERFLOW_FRACTION = 1e-14
#: Hard cap on controller iterations -- a backstop far above any real run
#: (per-row guards retire broken rows long before this fires).
_MAX_ITERATIONS = 1_000_000


class _AlphaPowerWorkspace:
    """Fused alpha-power currents evaluated entirely in preallocated buffers.

    The same pre-combined model as :func:`repro.spice.batch._alpha_power_kernel`
    (softplus overdrive, one half-exponent pow, tanh saturation) but with
    every temporary -- the clamped ``vds``, the overdrive chain, the CLM
    gain, the saturation ratio -- living in three scratch matrices
    allocated once for the whole batch.  Each call operates on the
    ``[:n]`` prefix views, so the adaptive hot loop performs no
    per-evaluation array allocation.
    """

    def __init__(self, nmos, pmos, n_cond: int, n_seeds: int):
        self._params = (_alpha_power_params(nmos), _alpha_power_params(pmos))
        shape = (n_cond, n_seeds)
        self._s1 = np.empty(shape)
        self._s2 = np.empty(shape)
        self._s3 = np.empty(shape)

    def currents(self, n: int, vgs_n, vds_n, vgs_p, vds_p,
                 out_down, out_up) -> None:
        """Pull-down and pull-up currents into ``out_down`` / ``out_up``."""
        self._one(self._params[0], n, vgs_n, vds_n, out_down)
        self._one(self._params[1], n, vgs_p, vds_p, out_up)

    def _one(self, p, n: int, vgs, vds_raw, out) -> None:
        vds = self._s1[:n]
        x = self._s2[:n]
        aux = self._s3[:n]
        np.maximum(vds_raw, 0.0, out=vds)
        np.multiply(vds, p["dibl"], out=x)
        x += vgs
        x -= p["vth0"]
        # softplus(x, smoothing) in the overflow-stable form
        np.abs(x, out=aux)
        aux *= p["neg_inv_smoothing"]
        np.exp(aux, out=aux)
        np.log1p(aux, out=aux)
        aux *= p["smoothing"]
        np.maximum(x, 0.0, out=x)
        x += aux                                   # overdrive
        np.power(x, p["alpha_half"], out=aux)      # half-power
        np.multiply(aux, aux, out=out)
        out *= p["kw"]
        np.multiply(vds, p["lam"], out=x)
        x += 1.0
        out *= x                                   # channel-length modulation
        np.multiply(aux, p["coeff"], out=x)
        np.maximum(x, 1e-3, out=x)
        np.divide(vds, x, out=x)
        np.tanh(x, out=x)
        out *= x                                   # saturation


def simulate_arc_transitions_adaptive(
    inverter: EquivalentInverter,
    sin,
    cload,
    vdd,
    stepper: Optional[StepperSpec] = None,
    on_failure: str = "raise",
) -> BatchTransientResult:
    """Simulate every requested condition of one arc with the adaptive stepper.

    Parameters
    ----------
    inverter, sin, cload, vdd:
        As in :func:`repro.spice.batch.simulate_arc_transitions`.
    stepper:
        The :class:`~repro.spice.stepper.StepperSpec` (must have
        ``method="rk45"``); ``None`` uses the default adaptive spec.
    on_failure:
        ``"raise"`` (default) aborts the batch when any condition fails to
        complete within the fixed engines' maximum extended horizon,
        underflows its step size, or suffers a rejection storm;
        ``"quarantine"`` retires such conditions per row with NaN results,
        mirroring the fixed batched engine's contract.

    Returns
    -------
    BatchTransientResult
        Waveform batches on per-condition *non-uniform* time grids, with
        dense-output derivatives attached to the output waveforms and an
        :class:`~repro.spice.stepper.IntegrationStats` record in
        ``result.stats``.
    """
    if stepper is None:
        stepper = StepperSpec(method="rk45")
    if stepper.method != "rk45":
        raise ValueError(f"the adaptive engine requires an rk45 stepper, "
                         f"got method={stepper.method!r}")
    if on_failure not in ("raise", "quarantine"):
        raise ValueError(f"on_failure must be 'raise' or 'quarantine', "
                         f"got {on_failure!r}")
    sin = np.atleast_1d(np.asarray(sin, dtype=float))
    cload = np.atleast_1d(np.asarray(cload, dtype=float))
    vdd = np.atleast_1d(np.asarray(vdd, dtype=float))
    if not (sin.shape == cload.shape == vdd.shape) or sin.ndim != 1:
        raise ValueError("sin, cload and vdd must be 1-D arrays of equal length")
    if sin.size == 0:
        raise ValueError("at least one condition is required")
    for name, values in (("sin", sin), ("cload", cload), ("vdd", vdd)):
        bad = np.nonzero(~np.isfinite(values))[0]
        if bad.size:
            raise ValueError(
                f"{name} contains a non-finite value at condition index "
                f"{int(bad[0])} ({bad.size} of {values.size} non-finite)")
    if np.any(sin <= 0.0) or np.any(cload <= 0.0) or np.any(vdd <= 0.0):
        raise ValueError("sin, cload and vdd must all be positive")
    faultinject.fire(SITE_INTEGRATE)

    n_cond = sin.size
    falling_output = inverter.arc.output_transition is Transition.FALL

    parasitic = np.asarray(inverter.parasitic_cap, dtype=float)
    miller = np.asarray(inverter.miller_cap, dtype=float)
    n_seeds = max(parasitic.size, miller.size, 1)
    parasitic = np.broadcast_to(parasitic, (n_seeds,))
    miller = np.broadcast_to(miller, (n_seeds,))

    nmos = inverter.nmos
    pmos = inverter.pmos
    from repro.devices.alpha_power import AlphaPowerMOSFET
    fused = (type(nmos) is AlphaPowerMOSFET and type(pmos) is AlphaPowerMOSFET)
    kernel = _AlphaPowerWorkspace(nmos, pmos, n_cond, n_seeds) if fused else None

    # The adaptive horizon equals the fixed engines' fully-extended window
    # (initial window plus every geometric extension), so the two engines
    # declare "non-functional at this operating point" at the same point.
    window = _estimate_windows(inverter, sin, cload, vdd)
    growth = 1.8
    horizon = window * (growth ** _serial._MAX_EXTENSIONS - 1.0) / (growth - 1.0)

    # ------------------------------------------------------------------
    # Per-condition run state, compacted to the active prefix [:na].
    # ------------------------------------------------------------------
    ids = np.arange(n_cond)
    ramp = sin.copy()
    supply = vdd.copy()
    slope_signed = (supply / ramp) if falling_output else -(supply / ramp)
    caps = cload[:, np.newaxis] + parasitic[np.newaxis, :]
    clamp_low = (-0.2 * supply)[:, np.newaxis].copy()
    clamp_high = (1.2 * supply)[:, np.newaxis].copy()
    tmax = sin + horizon
    atol = stepper.atol_frac * supply
    h_floor = _H_UNDERFLOW_FRACTION * tmax
    t = np.zeros(n_cond)
    h = ramp * _H0_RAMP_FRACTION
    errold = np.full(n_cond, 1e-4)
    rejects = np.zeros(n_cond, dtype=int)
    y = np.broadcast_to((supply[:, np.newaxis] if falling_output
                         else np.zeros((n_cond, 1))), (n_cond, n_seeds)).copy()

    # ------------------------------------------------------------------
    # Single-allocation workspace: stage buffers, scratch, sample stores.
    # ------------------------------------------------------------------
    shape = (n_cond, n_seeds)
    k = [np.empty(shape) for _ in range(7)]
    ystage = np.empty(shape)
    ynew = np.empty(shape)
    vclamp = np.empty(shape)
    vds_p = np.empty(shape)
    pull_down = np.empty(shape)
    pull_up = np.empty(shape)
    tmp = np.empty(shape)

    capacity = 64
    time_store = np.zeros((n_cond, capacity))
    volt_store = np.empty((n_cond, capacity, n_seeds))
    deriv_store = np.empty((n_cond, capacity, n_seeds))
    counts = np.ones(n_cond, dtype=int)
    quarantined = np.zeros(n_cond, dtype=bool)

    stats = IntegrationStats(method="rk45")

    def rhs(na: int, t_vec: np.ndarray, state: np.ndarray, out: np.ndarray,
            on_ramp: np.ndarray) -> np.ndarray:
        """Derivative of the active prefix into ``out`` (no allocation).

        ``on_ramp`` is the *step-level* mask: steps never straddle a ramp
        end, so one flag per row covers every stage time of the attempt.
        """
        stats.rhs_evals += na * n_seeds
        sup = supply[:na]
        frac = np.clip(t_vec / ramp[:na], 0.0, 1.0)
        vin = sup * frac if falling_output else sup * (1.0 - frac)
        dvin = np.where(on_ramp, slope_signed[:na], 0.0)
        vin_col = vin[:, np.newaxis]
        sup_col = sup[:, np.newaxis]
        vc = vclamp[:na]
        np.clip(state, clamp_low[:na], clamp_high[:na], out=vc)
        vdp = vds_p[:na]
        np.subtract(sup_col, vc, out=vdp)
        if kernel is not None:
            kernel.currents(na, vin_col, vc, sup_col - vin_col, vdp,
                            pull_down[:na], pull_up[:na])
            np.subtract(pull_up[:na], pull_down[:na], out=out)
        else:
            down = nmos.current(vin_col, vc)
            up = pmos.current(sup_col - vin_col, vdp)
            np.subtract(up, down, out=out)
        if np.any(dvin):
            mill = tmp[:na]
            np.multiply(miller, dvin[:, np.newaxis], out=mill)
            out += mill
        out /= caps[:na]
        return out

    na = n_cond
    rhs(na, t[:na], y[:na], k[0][:na], np.ones(na, dtype=bool))
    volt_store[:, 0] = y
    deriv_store[:, 0] = k[0]

    first_failure = None  # (original index, reason) under on_failure="raise"
    for _ in range(_MAX_ITERATIONS):
        if na == 0 or first_failure is not None:
            break
        on_ramp = t[:na] < ramp[:na]
        remaining = ramp[:na] - t[:na]
        hits_ramp_end = on_ramp & (h[:na] >= remaining)
        h_eff = np.where(on_ramp, np.minimum(h[:na], remaining), h[:na])
        h_col = h_eff[:, np.newaxis]

        # Stages 2..6 (k1 carried over by FSAL).
        for stage, (c_frac, row) in enumerate(
                zip((_C2, _C3, _C4, _C5, _C6), _A), start=1):
            acc = ystage[:na]
            np.multiply(k[0][:na], row[0], out=acc)
            for j in range(1, stage):
                if row[j] != 0.0:
                    np.multiply(k[j][:na], row[j], out=tmp[:na])
                    acc += tmp[:na]
            acc *= h_col
            acc += y[:na]
            rhs(na, t[:na] + c_frac * h_eff, acc, k[stage][:na], on_ramp)

        # Fifth-order solution and the FSAL stage at its endpoint.
        yn = ynew[:na]
        np.multiply(k[0][:na], _B[0], out=yn)
        for j in (2, 3, 4, 5):
            np.multiply(k[j][:na], _B[j], out=tmp[:na])
            yn += tmp[:na]
        yn *= h_col
        yn += y[:na]
        rhs(na, t[:na] + h_eff, yn, k[6][:na], on_ramp)

        # Scaled embedded error, RMS over seeds, one scalar per condition.
        ev = ystage[:na]
        np.multiply(k[0][:na], _E[0], out=ev)
        for j in (2, 3, 4, 5, 6):
            np.multiply(k[j][:na], _E[j], out=tmp[:na])
            ev += tmp[:na]
        ev *= h_col
        scale = tmp[:na]
        np.abs(yn, out=scale)
        np.maximum(scale, np.abs(y[:na]), out=scale)
        scale *= stepper.rtol
        scale += atol[:na, np.newaxis]
        ev /= scale
        np.square(ev, out=ev)
        err = np.sqrt(np.mean(ev, axis=1))
        # Identity without an active injector; under injection, poisoned
        # rows read as non-finite error -> forced rejection (storms).
        err = faultinject.corrupt_rows(SITE_REJECT, err)

        finite = np.isfinite(err)
        accept = finite & (err <= 1.0)
        stats.steps_taken += int(np.count_nonzero(accept))
        stats.steps_rejected += int(na - np.count_nonzero(accept))

        # PI controller: grow accepted steps from the error history, shrink
        # rejected ones from the current error alone (never above 1).
        err_fl = np.maximum(err, _ERR_FLOOR)
        factor = (stepper.safety * err_fl ** (-stepper.pi_alpha)
                  * np.maximum(errold[:na], _ERR_FLOOR) ** stepper.pi_beta)
        np.clip(factor, stepper.min_factor, stepper.max_factor, out=factor)
        shrink = np.clip(stepper.safety * err_fl ** -0.2,
                         stepper.min_factor, 1.0)
        factor = np.where(accept, factor, shrink)
        factor = np.where(finite, factor, stepper.min_factor)
        # A ramp-end clamp is not the controller's doing: accepted clamped
        # rows grow from the *unclamped* h so no memory is lost.
        base = np.where(hits_ramp_end & accept, h[:na], h_eff)
        h[:na] = base * factor

        t_next = np.where(hits_ramp_end, ramp[:na], t[:na] + h_eff)
        t[:na] = np.where(accept, t_next, t[:na])
        rejects[:na] = np.where(accept, 0, rejects[:na] + 1)
        errold[:na] = np.where(accept, np.maximum(err, 1e-4), errold[:na])

        acc_idx = np.nonzero(accept)[0]
        if acc_idx.size:
            y[acc_idx] = yn[acc_idx]
            k[0][acc_idx] = k[6][acc_idx]
            # Rows that just landed on their ramp end: the two one-sided
            # derivatives differ by exactly the Miller term, so the FSAL
            # stage is corrected in place of a fresh evaluation.  The
            # post-ramp value is also the dense-output derivative stored
            # for the boundary sample (crossings live in the tail).
            crossed_idx = np.nonzero(accept & hits_ramp_end)[0]
            if crossed_idx.size:
                k[0][crossed_idx] -= (miller[np.newaxis, :]
                                      * slope_signed[crossed_idx, np.newaxis]
                                      / caps[crossed_idx])
            # Commit samples under each row's original condition index.
            if int(counts.max()) + 1 > capacity:
                capacity *= 2
                grown_t = np.zeros((n_cond, capacity))
                grown_t[:, :time_store.shape[1]] = time_store
                grown_v = np.empty((n_cond, capacity, n_seeds))
                grown_v[:, :volt_store.shape[1]] = volt_store
                grown_d = np.empty((n_cond, capacity, n_seeds))
                grown_d[:, :deriv_store.shape[1]] = deriv_store
                time_store, volt_store, deriv_store = grown_t, grown_v, grown_d
            orig = ids[:na][acc_idx]
            pos = counts[orig]
            time_store[orig, pos] = t[:na][acc_idx]
            volt_store[orig, pos] = y[acc_idx]
            deriv_store[orig, pos] = k[0][acc_idx]
            counts[orig] = pos + 1

        # Retirement: completed rows leave the batch; failed rows abort or
        # quarantine.  Completion uses the fixed engines' far-slew margins.
        sup_col = supply[:na, np.newaxis]
        if falling_output:
            complete = np.all(y[:na] <= 0.5 * SLEW_LOW_THRESHOLD * sup_col,
                              axis=1)
        else:
            complete = np.all(
                y[:na] >= sup_col - 0.5 * (1.0 - SLEW_HIGH_THRESHOLD) * sup_col,
                axis=1)
        done = complete & (t[:na] >= ramp[:na])
        overran = (t[:na] >= tmax[:na]) & ~done
        storm = rejects[:na] >= stepper.max_rejects
        under = h[:na] < h_floor[:na]
        failed = (overran | storm | under) & ~done
        if np.any(failed):
            if on_failure == "quarantine":
                quarantined[ids[:na][failed]] = True
            else:
                first = int(np.nonzero(failed)[0][0])
                reason = ("rejection storm" if storm[first]
                          else "step-size underflow" if under[first]
                          else "window exhausted")
                first_failure = (int(ids[:na][first]), reason)
                break
        retire = done | failed
        if np.any(retire):
            kidx = np.nonzero(~retire)[0]
            new_na = kidx.size
            for arr in (ids, ramp, supply, slope_signed, tmax, atol, h_floor,
                        t, h, errold, rejects):
                arr[:new_na] = arr[:na][kidx]
            for mat in (y, caps, clamp_low, clamp_high, k[0]):
                mat[:new_na] = mat[:na][kidx]
            na = new_na
    else:
        raise RuntimeError("adaptive integration exceeded the iteration "
                           "backstop; this indicates a stepper bug")

    if first_failure is not None:
        index, reason = first_failure
        raise RuntimeError(
            f"output of {inverter.cell_name} did not complete its transition "
            f"(sin={sin[index]:.3g}s, cload={cload[index]:.3g}F, "
            f"vdd={vdd[index]:.3g}V); the cell is likely non-functional at "
            f"this operating point (adaptive stepper: {reason})"
        )

    # ------------------------------------------------------------------
    # Assemble padded batch matrices (padding holds the last sample, the
    # fixed engines' convention, so direction/final-value logic carries).
    # ------------------------------------------------------------------
    lengths = np.maximum(counts, 2)
    n_max = int(lengths.max())
    time_matrix = np.array(time_store[:, :n_max])
    volt_matrix = np.array(volt_store[:, :n_max])
    deriv_matrix = np.array(deriv_store[:, :n_max])
    for index in range(n_cond):
        length = int(counts[index])
        if length < 2:
            # A row quarantined before its first accepted step still needs
            # two samples with distinct times; its values are NaN below.
            time_matrix[index, 1] = time_matrix[index, 0] + float(sin[index])
            length = 2
        if length < n_max:
            time_matrix[index, length:] = time_matrix[index, length - 1]
            volt_matrix[index, length:] = volt_matrix[index, length - 1]
            deriv_matrix[index, length:] = deriv_matrix[index, length - 1]

    if np.any(quarantined):
        volt_matrix[quarantined] = np.nan
        deriv_matrix[quarantined] = np.nan

    # Input ramps on the same non-uniform axes (exactly piecewise linear,
    # so the input batch needs no dense-output derivative).
    fraction = np.clip(time_matrix / sin[:, np.newaxis], 0.0, 1.0)
    if falling_output:
        vin_matrix = vdd[:, np.newaxis] * fraction
    else:
        vin_matrix = vdd[:, np.newaxis] * (1.0 - fraction)

    input_batch = WaveformBatch(time_matrix, vin_matrix, valid_len=lengths)
    output_batch = WaveformBatch(time_matrix, volt_matrix, valid_len=lengths,
                                 derivative=deriv_matrix)
    return BatchTransientResult(
        input_waveforms=input_batch,
        output_waveforms=output_batch,
        sin=sin,
        cload=cload,
        vdd=vdd,
        quarantined=quarantined if on_failure == "quarantine" else None,
        stats=stats,
    )


def simulate_arc_transition_adaptive(
    inverter: EquivalentInverter,
    sin: float,
    cload: float,
    vdd: float,
    stepper: Optional[StepperSpec] = None,
) -> TransientResult:
    """Adaptive single-condition simulation (the serial engine's analogue).

    One condition is the single-row special case of the batch; the
    returned waveforms carry the dense-output derivative, so crossing-time
    and ``value_at`` measurements interpolate with the Hermite cubic.
    """
    batch = simulate_arc_transitions_adaptive(
        inverter, [float(sin)], [float(cload)], [float(vdd)], stepper=stepper)
    result = batch.condition(0)
    return TransientResult(input_waveform=result.input_waveform,
                           output_waveform=result.output_waveform,
                           vdd=result.vdd)
