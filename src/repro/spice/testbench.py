"""Characterization test benches.

These helpers wrap the equivalent-inverter reduction and the transient solver
into the measurements library characterization actually consumes: the
propagation delay ``Td`` and output transition time ``Sout`` of one timing
arc at one ``(Sin, Cload, Vdd)`` operating point, optionally vectorized over
a batch of Monte Carlo process seeds.

The module also provides :class:`SimulationCounter`, the bookkeeping object
behind every speedup number reported by the benchmark harness: each call that
performs a transient integration charges ``n_seeds`` "SPICE runs" to the
counter, mirroring how the paper counts simulator invocations, and
:class:`SimulationCache`, a memoized store of per-condition delay/slew
results keyed on ``(cell, arc, variation fingerprint, condition, n_steps)``
so the baseline and proposed flows stop re-simulating identical operating
points.  Counters are charged whether or not the cache hits: they account
for the simulation runs a flow *requires* (the quantity the paper's speedup
claims are about), while the cache only shortens wall-clock time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.equivalent_inverter import arc_identity_key
from repro.cells.library import Cell, TimingArc
from repro.runtime import register_runtime_cache
from repro.runtime.cache import LruCache
from repro.spice.transient import DEFAULT_STEPS
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


class SimulationCounter:
    """Counts transient-simulation invocations ("SPICE runs").

    The paper's efficiency claims are expressed in numbers of simulation runs
    (``O(k * Nsample)`` for the proposed flow versus ``O(N_LUT * Nsample)``
    for the look-up-table flow).  All characterization flows in this library
    accept an optional counter and charge one run per seed per input
    condition, so those complexities can be measured rather than asserted.
    """

    def __init__(self) -> None:
        self._total = 0
        self._by_label: Dict[str, int] = {}

    @property
    def total(self) -> int:
        """Total number of simulation runs charged so far."""
        return self._total

    def by_label(self) -> Dict[str, int]:
        """Breakdown of runs by label (flow name, cell name, ...)."""
        return dict(self._by_label)

    def add(self, runs: int, label: str = "unlabelled") -> None:
        """Charge ``runs`` simulation runs under ``label``."""
        if runs < 0:
            raise ValueError("runs must be non-negative")
        self._total += int(runs)
        self._by_label[label] = self._by_label.get(label, 0) + int(runs)

    def reset(self) -> None:
        """Reset all counts to zero."""
        self._total = 0
        self._by_label.clear()


#: Default byte bound of the global simulation cache (256 MiB).  Before the
#: runtime substrate the cache was bounded only by entry count, so a
#: many-seed workload could hold gigabytes of per-condition arrays.
DEFAULT_SIM_CACHE_BYTES = 256 * 2**20


class SimulationCache(LruCache):
    """LRU memoization of per-condition transient results.

    A :class:`~repro.runtime.cache.LruCache` specialization: bounded both by
    entry count and by payload bytes, with hit/miss/eviction statistics
    reported through ``repro.runtime.cache_stats()`` for the registered
    global instance.

    Keys identify the operating point: cell name and unit device widths,
    technology name plus content fingerprint, timing arc, the content
    fingerprint of the Monte Carlo seed batch (or ``"nominal"``), the
    ``(sin, cload, vdd)`` condition, and the full stepper signature
    (scheme, step count or tolerances/controller constants) -- built as
    :meth:`arc_prefix` (one per swept arc; exact guarantees documented
    there) plus a :meth:`condition_key` tail per operating point.  Values
    are the measured per-seed delay and slew arrays; copies are stored and
    returned so callers can never corrupt the cache.

    The global instance (:func:`get_simulation_cache`) is consulted by
    :func:`repro.spice.sweep.sweep_conditions` and everything layered on top
    of it.  Set the environment variable ``REPRO_SIM_CACHE=0`` to disable
    caching process-wide, ``REPRO_SIM_CACHE_SIZE`` to change the entry limit
    (default 4096 conditions) and ``REPRO_SIM_CACHE_BYTES`` to change the
    byte bound; ``repro.runtime.configure(cache_bytes=...)`` re-bounds the
    registered instance at run time.
    """

    def __init__(self, max_entries: int = 4096,
                 max_bytes: Optional[int] = DEFAULT_SIM_CACHE_BYTES,
                 name: str = "simulation"):
        # durable: keys are stable digests/values are plain arrays, so
        # entries are valid across processes and may live on disk.
        super().__init__(name=name, max_entries=max_entries,
                         max_bytes=max_bytes, durable=True)

    # ------------------------------------------------------------------
    # Keying and access
    # ------------------------------------------------------------------
    @staticmethod
    def arc_prefix(cell: Cell, technology: TechnologyNode, arc: TimingArc,
                   variation_fingerprint: str) -> tuple:
        """The arc-identity prefix shared by every key of one bound arc.

        Sweeps and the fused library planner build this once per arc and
        append per-condition tails with :meth:`condition_key`, instead of
        re-deriving the cell/technology identity for every operating point.
        The exact identity guarantees are those of the shared
        :func:`repro.cells.equivalent_inverter.arc_identity_key`.
        """
        return arc_identity_key(cell, technology, arc, variation_fingerprint)

    @staticmethod
    def condition_key(prefix: tuple, sin: float, cload: float, vdd: float,
                      stepper) -> tuple:
        """Append one operating point and stepper identity to an arc prefix.

        ``stepper`` is the numerical-scheme identity: a
        :class:`~repro.spice.stepper.StepperSpec` (its
        :meth:`~repro.spice.stepper.StepperSpec.signature` is embedded), a
        plain ``int`` step count (historical callers; normalized to the
        equivalent fixed-step ``("rk4", n_steps)`` signature), or an
        already-built signature tuple.  Results produced by different
        schemes or tolerances therefore can never collide.  Disk-tier
        entries written before signature keying hash differently and are
        simply re-simulated on first use.
        """
        if isinstance(stepper, tuple):
            signature = stepper
        elif isinstance(stepper, int):
            signature = ("rk4", int(stepper))
        else:
            signature = stepper.signature()
        return prefix + (float(sin), float(cload), float(vdd)) + signature

    def get(self, key: tuple) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Return ``(delay, slew)`` copies for ``key``, or ``None`` on a miss."""
        entry = super().get(key)
        if entry is None:
            return None
        return entry[0].copy(), entry[1].copy()

    def put(self, key: tuple, delay: np.ndarray, slew: np.ndarray) -> None:
        """Store ``(delay, slew)`` for ``key`` (no-op while disabled)."""
        delay = np.array(delay, dtype=float, copy=True)
        slew = np.array(slew, dtype=float, copy=True)
        super().put(key, (delay, slew), nbytes=delay.nbytes + slew.nbytes)


_SIMULATION_CACHE: Optional[SimulationCache] = None


def get_simulation_cache() -> SimulationCache:
    """The process-wide :class:`SimulationCache` (lazily constructed).

    The instance is registered in the runtime cache registry under the name
    ``"simulation"``, so its statistics appear in
    ``repro.runtime.cache_stats()`` and ``configure(cache_bytes=...)``
    re-bounds it.
    """
    global _SIMULATION_CACHE
    if _SIMULATION_CACHE is None:
        max_bytes_env = os.environ.get("REPRO_SIM_CACHE_BYTES")
        cache = SimulationCache(
            max_entries=int(os.environ.get("REPRO_SIM_CACHE_SIZE", "4096")),
            max_bytes=(int(max_bytes_env) if max_bytes_env
                       else DEFAULT_SIM_CACHE_BYTES))
        if os.environ.get("REPRO_SIM_CACHE", "1") in ("0", "false", "off"):
            cache.disable()
        register_runtime_cache(cache)
        _SIMULATION_CACHE = cache
    return _SIMULATION_CACHE


@dataclass(frozen=True)
class TimingMeasurement:
    """Delay and output slew of one arc at one operating point.

    ``delay`` and ``output_slew`` are arrays over Monte Carlo seeds (length 1
    for nominal characterization).
    """

    cell_name: str
    arc: TimingArc
    sin: float
    cload: float
    vdd: float
    delay: np.ndarray
    output_slew: np.ndarray

    @property
    def n_seeds(self) -> int:
        """Number of process seeds in this measurement."""
        return int(np.asarray(self.delay).size)

    def nominal_delay(self) -> float:
        """Delay of the first (nominal) seed."""
        return float(np.asarray(self.delay).reshape(-1)[0])

    def nominal_slew(self) -> float:
        """Output slew of the first (nominal) seed."""
        return float(np.asarray(self.output_slew).reshape(-1)[0])

    def delay_statistics(self) -> Dict[str, float]:
        """Mean / standard deviation / skewness of the delay ensemble."""
        return _ensemble_statistics(np.asarray(self.delay, dtype=float))

    def slew_statistics(self) -> Dict[str, float]:
        """Mean / standard deviation / skewness of the slew ensemble."""
        return _ensemble_statistics(np.asarray(self.output_slew, dtype=float))


def _ensemble_statistics(values: np.ndarray) -> Dict[str, float]:
    values = values.reshape(-1)
    mean = float(np.mean(values))
    std = float(np.std(values))
    if std > 0.0 and values.size > 2:
        skew = float(np.mean(((values - mean) / std) ** 3))
    else:
        skew = 0.0
    return {"mean": mean, "std": std, "skew": skew}


def characterize_arc(
    cell: Cell,
    technology: TechnologyNode,
    sin: float,
    cload: float,
    vdd: float,
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
    counter_label: str = "characterize_arc",
) -> TimingMeasurement:
    """Measure ``Td`` and ``Sout`` of one cell arc at one operating point.

    Parameters
    ----------
    cell, technology:
        The cell and the technology node to bind it to.
    sin, cload, vdd:
        Input slew (seconds), load capacitance (farads), supply (volts).
    arc:
        Timing arc; defaults to the first input pin, falling output.
    variation:
        Optional batch of process seeds (vectorized simulation).
    n_steps:
        RK4 steps for the transient solver.
    counter:
        Optional :class:`SimulationCounter` charged with one run per seed.
    counter_label:
        Label under which runs are charged.
    """
    from repro.spice.sweep import sweep_conditions  # deferred: avoids cycle

    return sweep_conditions(
        cell, technology, [(sin, cload, vdd)], arc=arc, variation=variation,
        n_steps=n_steps, counter=counter, counter_label=counter_label,
    )[0]


def characterize_cell_nominal(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[Sequence[float]],
    arc: Optional[TimingArc] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
) -> List[TimingMeasurement]:
    """Nominal characterization of one arc over a list of operating points.

    ``conditions`` is a sequence of ``(sin, cload, vdd)`` triples, all
    simulated in one pass of the batched transient engine.
    """
    from repro.spice.sweep import sweep_conditions  # deferred: avoids cycle

    return sweep_conditions(
        cell, technology, conditions, arc=arc, n_steps=n_steps,
        counter=counter, counter_label=f"nominal:{cell.name}",
    )
