"""Characterization test benches.

These helpers wrap the equivalent-inverter reduction and the transient solver
into the measurements library characterization actually consumes: the
propagation delay ``Td`` and output transition time ``Sout`` of one timing
arc at one ``(Sin, Cload, Vdd)`` operating point, optionally vectorized over
a batch of Monte Carlo process seeds.

The module also provides :class:`SimulationCounter`, the bookkeeping object
behind every speedup number reported by the benchmark harness: each call that
performs a transient integration charges ``n_seeds`` "SPICE runs" to the
counter, mirroring how the paper counts simulator invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cells.equivalent_inverter import EquivalentInverter, reduce_cell
from repro.cells.library import Cell, TimingArc, Transition
from repro.spice.transient import DEFAULT_STEPS, simulate_arc_transition
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


class SimulationCounter:
    """Counts transient-simulation invocations ("SPICE runs").

    The paper's efficiency claims are expressed in numbers of simulation runs
    (``O(k * Nsample)`` for the proposed flow versus ``O(N_LUT * Nsample)``
    for the look-up-table flow).  All characterization flows in this library
    accept an optional counter and charge one run per seed per input
    condition, so those complexities can be measured rather than asserted.
    """

    def __init__(self) -> None:
        self._total = 0
        self._by_label: Dict[str, int] = {}

    @property
    def total(self) -> int:
        """Total number of simulation runs charged so far."""
        return self._total

    def by_label(self) -> Dict[str, int]:
        """Breakdown of runs by label (flow name, cell name, ...)."""
        return dict(self._by_label)

    def add(self, runs: int, label: str = "unlabelled") -> None:
        """Charge ``runs`` simulation runs under ``label``."""
        if runs < 0:
            raise ValueError("runs must be non-negative")
        self._total += int(runs)
        self._by_label[label] = self._by_label.get(label, 0) + int(runs)

    def reset(self) -> None:
        """Reset all counts to zero."""
        self._total = 0
        self._by_label.clear()


@dataclass(frozen=True)
class TimingMeasurement:
    """Delay and output slew of one arc at one operating point.

    ``delay`` and ``output_slew`` are arrays over Monte Carlo seeds (length 1
    for nominal characterization).
    """

    cell_name: str
    arc: TimingArc
    sin: float
    cload: float
    vdd: float
    delay: np.ndarray
    output_slew: np.ndarray

    @property
    def n_seeds(self) -> int:
        """Number of process seeds in this measurement."""
        return int(np.asarray(self.delay).size)

    def nominal_delay(self) -> float:
        """Delay of the first (nominal) seed."""
        return float(np.asarray(self.delay).reshape(-1)[0])

    def nominal_slew(self) -> float:
        """Output slew of the first (nominal) seed."""
        return float(np.asarray(self.output_slew).reshape(-1)[0])

    def delay_statistics(self) -> Dict[str, float]:
        """Mean / standard deviation / skewness of the delay ensemble."""
        return _ensemble_statistics(np.asarray(self.delay, dtype=float))

    def slew_statistics(self) -> Dict[str, float]:
        """Mean / standard deviation / skewness of the slew ensemble."""
        return _ensemble_statistics(np.asarray(self.output_slew, dtype=float))


def _ensemble_statistics(values: np.ndarray) -> Dict[str, float]:
    values = values.reshape(-1)
    mean = float(np.mean(values))
    std = float(np.std(values))
    if std > 0.0 and values.size > 2:
        skew = float(np.mean(((values - mean) / std) ** 3))
    else:
        skew = 0.0
    return {"mean": mean, "std": std, "skew": skew}


def characterize_arc(
    cell: Cell,
    technology: TechnologyNode,
    sin: float,
    cload: float,
    vdd: float,
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
    counter_label: str = "characterize_arc",
) -> TimingMeasurement:
    """Measure ``Td`` and ``Sout`` of one cell arc at one operating point.

    Parameters
    ----------
    cell, technology:
        The cell and the technology node to bind it to.
    sin, cload, vdd:
        Input slew (seconds), load capacitance (farads), supply (volts).
    arc:
        Timing arc; defaults to the first input pin, falling output.
    variation:
        Optional batch of process seeds (vectorized simulation).
    n_steps:
        RK4 steps for the transient solver.
    counter:
        Optional :class:`SimulationCounter` charged with one run per seed.
    counter_label:
        Label under which runs are charged.
    """
    inverter = reduce_cell(cell, technology, arc=arc, variation=variation)
    result = simulate_arc_transition(inverter, sin=sin, cload=cload, vdd=vdd,
                                     n_steps=n_steps)
    delay = result.delay()
    slew = result.output_slew()
    if counter is not None:
        counter.add(delay.size, label=counter_label)
    return TimingMeasurement(
        cell_name=cell.name,
        arc=inverter.arc,
        sin=float(sin),
        cload=float(cload),
        vdd=float(vdd),
        delay=np.asarray(delay, dtype=float),
        output_slew=np.asarray(slew, dtype=float),
    )


def characterize_cell_nominal(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[Sequence[float]],
    arc: Optional[TimingArc] = None,
    n_steps: int = DEFAULT_STEPS,
    counter: Optional[SimulationCounter] = None,
) -> List[TimingMeasurement]:
    """Nominal characterization of one arc over a list of operating points.

    ``conditions`` is a sequence of ``(sin, cload, vdd)`` triples.
    """
    measurements = []
    for sin, cload, vdd in conditions:
        measurements.append(
            characterize_arc(cell, technology, sin=sin, cload=cload, vdd=vdd,
                             arc=arc, n_steps=n_steps, counter=counter,
                             counter_label=f"nominal:{cell.name}")
        )
    return measurements
