"""Vectorized transient simulation of an equivalent-inverter transition.

The simulator integrates the single-node output differential equation

.. math::

    C_{tot} \\frac{dV_{out}}{dt} = I_{pull\\text{-}up}(V_{in}, V_{out})
        - I_{pull\\text{-}down}(V_{in}, V_{out})
        + C_{M} \\frac{dV_{in}}{dt}

with a fixed-step classical Runge-Kutta (RK4) scheme.  The state is a NumPy
vector over Monte Carlo seeds, so a 1000-seed statistical characterization of
one input condition costs a single integration pass.  The time window is
sized from the effective current of the driving device and automatically
extended if the output has not completed its transition (important at low
supply voltages where delays grow super-linearly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cells.equivalent_inverter import EquivalentInverter
from repro.cells.library import Transition
from repro.spice.stimulus import RampStimulus
from repro.spice.waveform import SLEW_HIGH_THRESHOLD, SLEW_LOW_THRESHOLD, Waveform

#: Default number of RK4 steps per simulation window.
DEFAULT_STEPS = 400
#: Safety factor applied to the estimated transition time when sizing the window.
_WINDOW_MARGIN = 8.0
#: Maximum number of window extensions before giving up.
_MAX_EXTENSIONS = 6


def _phase_steps(n_steps: int) -> tuple:
    """Split ``n_steps`` into (ramp, tail) step counts.

    Shared with the batched engine (:mod:`repro.spice.batch`) so both engines
    take the identical step sequence and produce identical waveform samples.
    """
    ramp_steps = max(n_steps // 3, 48)
    tail_steps = max(n_steps - ramp_steps, 64)
    return ramp_steps, tail_steps


def _extension_steps(tail_steps: int) -> int:
    """Step count of each geometric window-extension chunk."""
    return max(tail_steps // 2, 64)


@dataclass(frozen=True)
class TransientResult:
    """Waveforms produced by one arc transition simulation."""

    input_waveform: Waveform
    output_waveform: Waveform
    vdd: float

    def delay(self) -> np.ndarray:
        """Propagation delay per seed, in seconds."""
        return self.output_waveform.propagation_delay(self.input_waveform, self.vdd)

    def output_slew(self) -> np.ndarray:
        """Output transition time per seed, in seconds."""
        return self.output_waveform.transition_time(self.vdd)


def _estimate_window(inverter: EquivalentInverter, sin: float, cload: float,
                     vdd: float) -> float:
    """Heuristic post-ramp window long enough for the output to settle."""
    ieff = np.asarray(inverter.effective_current(vdd), dtype=float)
    ieff_floor = max(float(np.min(ieff)), 1e-9)
    total_cap = cload + float(np.max(np.asarray(inverter.parasitic_cap)))
    intrinsic = total_cap * vdd / ieff_floor
    return 0.5 * sin + _WINDOW_MARGIN * max(intrinsic, 1e-13)


def simulate_arc_transition(
    inverter: EquivalentInverter,
    sin: float,
    cload: float,
    vdd: float,
    n_steps: int = DEFAULT_STEPS,
) -> TransientResult:
    """Simulate one switching event of an equivalent inverter.

    Parameters
    ----------
    inverter:
        Equivalent inverter produced by :func:`repro.cells.reduce_cell`
        (possibly carrying per-seed parameter arrays).
    sin:
        Input transition time in seconds.
    cload:
        External load capacitance in farads.
    vdd:
        Supply voltage in volts.
    n_steps:
        Number of RK4 steps in the initial window.

    Returns
    -------
    TransientResult
        Input and output waveforms (output vectorized over seeds).

    Raises
    ------
    ValueError
        For non-positive ``sin``, ``cload`` or ``vdd``.
    RuntimeError
        If the output fails to complete its transition even after the
        maximum number of window extensions (indicates a non-functional
        cell/condition combination, e.g. Vdd far below threshold).
    """
    if sin <= 0.0 or cload <= 0.0 or vdd <= 0.0:
        raise ValueError("sin, cload and vdd must all be positive")
    if n_steps < 16:
        raise ValueError("n_steps must be at least 16")

    falling_output = inverter.arc.output_transition is Transition.FALL
    stimulus = RampStimulus(vdd=vdd, slew=sin, rising=falling_output)

    parasitic = np.asarray(inverter.parasitic_cap, dtype=float)
    miller = np.asarray(inverter.miller_cap, dtype=float)
    n_seeds = max(parasitic.size, miller.size, 1)
    parasitic = np.broadcast_to(parasitic, (n_seeds,))
    miller = np.broadcast_to(miller, (n_seeds,))
    total_cap = cload + parasitic

    nmos = inverter.nmos
    pmos = inverter.pmos

    def derivative(t: float, vout: np.ndarray) -> np.ndarray:
        vin = stimulus.voltage(t)
        dvin = stimulus.slope(t)
        vout_clamped = np.clip(vout, -0.2 * vdd, 1.2 * vdd)
        pull_down = nmos.current(vin, vout_clamped)
        pull_up = pmos.current(vdd - vin, vdd - vout_clamped)
        return (pull_up - pull_down + miller * dvin) / total_cap

    initial_value = vdd if falling_output else 0.0
    vout = np.full(n_seeds, initial_value, dtype=float)

    def integrate_chunk(t_begin: float, t_end: float, steps: int,
                        state: np.ndarray) -> tuple:
        """Classical RK4 over [t_begin, t_end]; returns (times, voltages, state)."""
        times = np.linspace(t_begin, t_end, steps + 1)
        dt = times[1] - times[0]
        voltages = np.empty((times.size, n_seeds))
        voltages[0] = state
        for index in range(times.size - 1):
            t = times[index]
            k1 = derivative(t, state)
            k2 = derivative(t + dt / 2.0, state + dt / 2.0 * k1)
            k3 = derivative(t + dt / 2.0, state + dt / 2.0 * k2)
            k4 = derivative(t + dt, state + dt * k3)
            state = state + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            voltages[index + 1] = state
        return times, voltages, state

    time_chunks = []
    volt_chunks = []

    # Phase A: the input ramp.  Aligning a chunk boundary with the end of the
    # ramp keeps the slope discontinuity off the interior of any RK4 step,
    # which is what makes the delay measurement converge smoothly in n_steps.
    ramp_steps, tail_steps = _phase_steps(n_steps)
    times, voltages, vout = integrate_chunk(0.0, sin, ramp_steps, vout)
    time_chunks.append(times)
    volt_chunks.append(voltages)
    t_start = sin

    # Phase B: after the ramp, integrate until every seed completes its
    # transition, extending the window geometrically if needed.
    window = _estimate_window(inverter, sin, cload, vdd)
    for extension in range(_MAX_EXTENSIONS):
        chunk_steps = tail_steps if extension == 0 else _extension_steps(tail_steps)
        times, voltages, vout = integrate_chunk(t_start, t_start + window,
                                                chunk_steps, vout)
        time_chunks.append(times[1:])
        volt_chunks.append(voltages[1:])

        # Completion check: every seed must travel safely past the far slew
        # threshold so delay and slew measurements are well defined.
        if falling_output:
            done = bool(np.all(vout <= 0.5 * SLEW_LOW_THRESHOLD * vdd))
        else:
            done = bool(np.all(vout >= vdd - 0.5 * (1.0 - SLEW_HIGH_THRESHOLD) * vdd))
        t_start = times[-1]
        if done:
            break
        window *= 1.8
    else:
        raise RuntimeError(
            f"output of {inverter.cell_name} did not complete its transition "
            f"(sin={sin:.3g}s, cload={cload:.3g}F, vdd={vdd:.3g}V); the cell is "
            "likely non-functional at this operating point"
        )

    time_axis = np.concatenate(time_chunks)
    voltage_matrix = np.concatenate(volt_chunks, axis=0)

    input_waveform = stimulus.waveform(time_axis)
    output_waveform = Waveform(time_axis, voltage_matrix)
    return TransientResult(input_waveform=input_waveform,
                           output_waveform=output_waveform, vdd=vdd)
