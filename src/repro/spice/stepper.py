"""Stepper specifications shared by the transient integration engines.

A :class:`StepperSpec` pins down *everything* that shapes an engine's
numerical results -- the scheme (fixed-step RK4 or embedded Dormand-Prince
RK45), the fixed step count, the error tolerances and the step-size
controller constants.  Its :meth:`~StepperSpec.signature` tuple is the
engine part of every :class:`~repro.spice.testbench.SimulationCache` key
and of the library checkpoint signature, so results produced by different
schemes (or the same scheme at different tolerances) can never collide in
a cache or be mixed across a checkpoint resume.

:class:`IntegrationStats` is the engines' common accounting record
(steps taken / steps rejected / scalar RHS evaluations); both the fixed
and the adaptive engine attach one to their batch results so sweeps and
the fused library pipeline can report integration cost in the
:class:`~repro.runtime.accounting.RunLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.spice.transient import DEFAULT_STEPS

#: Default relative tolerance of the adaptive engine.  Chosen to match the
#: engine-equivalence budget of the fixed-step engines (``rtol <= 1e-9``):
#: at this local tolerance the adaptive delays/slews agree with the
#: fixed-step results to within the fixed-step scheme's own discretization
#: error (enforced by the test suite and ``benchmarks/test_perf_integrator``).
DEFAULT_RTOL = 1e-9
#: Default absolute tolerance, as a fraction of each condition's supply
#: voltage (the natural state scale of the output node).
DEFAULT_ATOL_FRAC = 1e-9


@dataclass(frozen=True)
class StepperSpec:
    """Full numerical identity of one transient integration scheme.

    Attributes
    ----------
    method:
        ``"rk4"`` (fixed-step classical Runge-Kutta; the historical
        engines) or ``"rk45"`` (embedded Dormand-Prince 5(4) with PI
        step-size control; :mod:`repro.spice.adaptive`).
    n_steps:
        Fixed-step count per simulation window.  Only meaningful for
        ``"rk4"`` -- the adaptive scheme chooses its own steps, so
        ``n_steps`` is excluded from the rk45 :meth:`signature`.
    rtol, atol_frac:
        Adaptive error test: a step is accepted when the RMS-over-seeds of
        ``|err| / (atol_frac * vdd + rtol * |v|)`` is at most 1 for the
        condition.
    safety, min_factor, max_factor:
        Step-size controller bounds: the proposed factor is clipped to
        ``[min_factor, max_factor]`` and scaled by ``safety``.
    pi_alpha, pi_beta:
        PI controller exponents (Hairer's PI.4.2 constants for a
        fifth-order pair): ``factor = safety * err**-pi_alpha *
        err_prev**pi_beta``.
    max_rejects:
        Consecutive rejected attempts after which a condition is declared
        broken (rejection storm; see ``adaptive.reject`` fault site).
    """

    method: str = "rk45"
    n_steps: int = DEFAULT_STEPS
    rtol: float = DEFAULT_RTOL
    atol_frac: float = DEFAULT_ATOL_FRAC
    safety: float = 0.9
    min_factor: float = 0.2
    max_factor: float = 5.0
    pi_alpha: float = 0.7 / 5.0
    pi_beta: float = 0.4 / 5.0
    max_rejects: int = 50

    def __post_init__(self) -> None:
        if self.method not in ("rk4", "rk45"):
            raise ValueError(f"method must be 'rk4' or 'rk45', "
                             f"got {self.method!r}")
        if self.n_steps < 16:
            raise ValueError("n_steps must be at least 16")
        if not (0.0 < self.rtol < 1.0):
            raise ValueError("rtol must be in (0, 1)")
        if not (0.0 < self.atol_frac < 1.0):
            raise ValueError("atol_frac must be in (0, 1)")
        if not (0.0 < self.safety <= 1.0):
            raise ValueError("safety must be in (0, 1]")
        if not (0.0 < self.min_factor < 1.0 <= self.max_factor):
            raise ValueError("need 0 < min_factor < 1 <= max_factor")
        if self.max_rejects < 1:
            raise ValueError("max_rejects must be at least 1")

    @classmethod
    def for_engine(cls, engine: str,
                   n_steps: int = DEFAULT_STEPS) -> "StepperSpec":
        """The default spec of one ``sweep_conditions`` engine name."""
        if engine == "adaptive":
            return cls(method="rk45", n_steps=int(n_steps))
        return cls(method="rk4", n_steps=int(n_steps))

    def signature(self) -> tuple:
        """The cache/checkpoint key tuple of this scheme.

        Fixed-step results depend only on the step count; adaptive results
        depend on the tolerances and every controller constant but *not*
        on ``n_steps``, so sweeps that differ only in the fixed-step count
        still share adaptive cache entries.
        """
        if self.method == "rk4":
            return ("rk4", int(self.n_steps))
        return ("rk45", float(self.rtol), float(self.atol_frac),
                float(self.safety), float(self.min_factor),
                float(self.max_factor), float(self.pi_alpha),
                float(self.pi_beta), int(self.max_rejects))


def resolve_stepper(engine: str, n_steps: int = DEFAULT_STEPS) -> StepperSpec:
    """An engine's effective default stepper under the runtime config.

    Like :meth:`StepperSpec.for_engine`, but the adaptive engine's
    tolerances honor ``runtime.configure(transient_rtol=...,
    transient_atol_frac=...)`` / ``REPRO_TRANSIENT_RTOL`` /
    ``REPRO_TRANSIENT_ATOL``.  An explicit ``stepper=`` argument anywhere
    always wins over this resolution.
    """
    from repro.runtime import runtime_config  # runtime never imports spice

    spec = StepperSpec.for_engine(engine, n_steps=n_steps)
    if spec.method != "rk45":
        return spec
    config = runtime_config()
    overrides = {}
    if config.transient_rtol is not None:
        overrides["rtol"] = float(config.transient_rtol)
    if config.transient_atol_frac is not None:
        overrides["atol_frac"] = float(config.transient_atol_frac)
    return replace(spec, **overrides) if overrides else spec


@dataclass
class IntegrationStats:
    """Integration-cost accounting shared by every transient engine.

    ``steps_taken`` / ``steps_rejected`` count per-condition step
    attempts (summed over the conditions of a batch); ``rhs_evals``
    counts *scalar* derivative evaluations -- one per (condition, seed)
    per stage -- so fixed-step and adaptive costs are directly comparable
    whatever the batch shapes were.
    """

    method: str = "rk4"
    steps_taken: int = 0
    steps_rejected: int = 0
    rhs_evals: int = 0

    def merge(self, other: "IntegrationStats") -> None:
        """Accumulate another record (chunked integrations sum their stats)."""
        self.steps_taken += other.steps_taken
        self.steps_rejected += other.steps_rejected
        self.rhs_evals += other.rhs_evals

    def as_dict(self) -> dict:
        """Plain-dict view for JSON artifacts and ledger metrics."""
        return {
            "method": self.method,
            "steps_taken": int(self.steps_taken),
            "steps_rejected": int(self.steps_rejected),
            "rhs_evals": int(self.rhs_evals),
        }
