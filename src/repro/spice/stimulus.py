"""Input stimulus generation.

Characterization drives each cell input with a saturated linear ramp whose
transition time equals the requested input slew ``Sin``.  Following the slew
convention of :mod:`repro.spice.waveform` (20 %-80 % measurement, 0.6 derate),
a requested ``Sin`` maps to a 0-to-100 % ramp duration of exactly ``Sin``:
measuring the generated ramp with the library's own convention returns the
requested value, which keeps ``Sin`` and ``Sout`` consistent end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.waveform import Waveform


@dataclass(frozen=True)
class RampStimulus:
    """A saturated linear voltage ramp.

    Attributes
    ----------
    vdd:
        Supply voltage (final value of a rising ramp), in volts.
    slew:
        Full-swing transition time of the ramp, in seconds.
    rising:
        ``True`` for a 0-to-Vdd ramp, ``False`` for a Vdd-to-0 ramp.
    start_time:
        Time at which the ramp begins, in seconds.
    """

    vdd: float
    slew: float
    rising: bool = True
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError("vdd must be positive")
        if self.slew <= 0.0:
            raise ValueError("slew must be positive")
        if self.start_time < 0.0:
            raise ValueError("start_time must be non-negative")

    @property
    def end_time(self) -> float:
        """Time at which the ramp reaches its final value."""
        return self.start_time + self.slew

    def voltage(self, time) -> np.ndarray:
        """Ramp voltage at the given times (vectorized, with a scalar fast path).

        The transient solver calls this once per RK4 stage with a plain float;
        the scalar branch avoids the ``np.asarray``/``float()`` round-trip that
        would otherwise dominate the per-step cost of the serial engine.
        """
        if isinstance(time, (float, int)):
            fraction = (time - self.start_time) / self.slew
            if fraction < 0.0:
                fraction = 0.0
            elif fraction > 1.0:
                fraction = 1.0
            if self.rising:
                return self.vdd * fraction
            return self.vdd * (1.0 - fraction)
        time = np.asarray(time, dtype=float)
        fraction = np.clip((time - self.start_time) / self.slew, 0.0, 1.0)
        if self.rising:
            return self.vdd * fraction
        return self.vdd * (1.0 - fraction)

    def slope(self, time) -> np.ndarray:
        """Time derivative of the ramp voltage (for Miller-coupling injection).

        Scalar inputs take a pure-Python fast path (see :meth:`voltage`).
        """
        if isinstance(time, (float, int)):
            if self.start_time <= time <= self.end_time:
                magnitude = self.vdd / self.slew
                return magnitude if self.rising else -magnitude
            return 0.0
        time = np.asarray(time, dtype=float)
        active = (time >= self.start_time) & (time <= self.end_time)
        magnitude = self.vdd / self.slew
        signed = magnitude if self.rising else -magnitude
        return np.where(active, signed, 0.0)

    def waveform(self, time: np.ndarray) -> Waveform:
        """Sample the ramp onto a time axis as a :class:`Waveform`."""
        return Waveform(np.asarray(time, dtype=float), self.voltage(time))
