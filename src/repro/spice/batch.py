"""Batched multi-condition transient engine.

The serial engine (:mod:`repro.spice.transient`) integrates one
``(Sin, Cload, Vdd)`` condition at a time, so a sweep of ``n`` conditions pays
the Python-level RK4 loop ``n`` times over.  This module integrates *all*
conditions of an arc at once in a single 2-D state array of shape
``(n_conditions, n_seeds)`` -- the software analogue of batching SPICE runs
with ``.ALTER`` statements, applied across operating points as well as
process seeds.

Design notes:

* **Per-condition time normalization.**  Every condition keeps its own ramp
  duration and its own post-ramp window, but all conditions advance through a
  shared *normalized step index*: step ``i`` of the batch integrates step
  ``i`` of every condition with that condition's own ``dt``.  The per-step
  NumPy work therefore grows from ``(n_seeds,)`` arrays to
  ``(n_conditions, n_seeds)`` arrays while the interpreted loop overhead is
  paid once, which is where the speedup comes from.
* **Phase handling.**  The ramp/tail chunk boundaries and step counts are the
  exact ones of the serial engine (shared via
  :func:`repro.spice.transient._phase_steps`), and every arithmetic operation
  is the elementwise-identical broadcast of the serial engine's scalar
  expression.  The two engines therefore agree to floating-point noise
  (equivalence is enforced at ``rtol <= 1e-9`` by the test suite).
* **Active-set retirement.**  The completion check runs per condition; the
  conditions that finish are retired from the derivative evaluation while the
  geometric window extension continues only for the stragglers, so one slow
  low-Vdd corner no longer forces extra integration work on the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cells.equivalent_inverter import EquivalentInverter
from repro.cells.library import Transition
from repro.runtime import faultinject
from repro.spice import transient as _serial
from repro.spice.stepper import IntegrationStats
from repro.spice.transient import (
    DEFAULT_STEPS,
    TransientResult,
    _extension_steps,
    _phase_steps,
)
from repro.spice.waveform import (
    SLEW_HIGH_THRESHOLD,
    SLEW_LOW_THRESHOLD,
    WaveformBatch,
)

SITE_INTEGRATE = faultinject.register_fault_site(
    "transient.integrate",
    "one batched transient call about to integrate (exception faults)")
SITE_STATE = faultinject.register_fault_site(
    "transient.state",
    "post-ramp RK4 state of a batched transient call (NaN row faults)")


@dataclass(frozen=True)
class BatchTransientResult:
    """Waveforms of a batched multi-condition arc simulation.

    Attributes
    ----------
    input_waveforms, output_waveforms:
        Input ramps and output responses for every condition, as
        :class:`~repro.spice.waveform.WaveformBatch` objects.
    sin, cload, vdd:
        The simulated conditions, each of shape ``(n_conditions,)``.
    """

    input_waveforms: WaveformBatch
    output_waveforms: WaveformBatch
    sin: np.ndarray
    cload: np.ndarray
    vdd: np.ndarray
    #: Boolean mask of shape ``(n_conditions,)`` marking rows retired by
    #: per-row quarantine (``on_failure="quarantine"``): their integration
    #: went non-finite or never completed, and their delay/slew values are
    #: NaN.  ``None`` when the simulation ran fail-fast (the default).
    quarantined: Optional[np.ndarray] = None
    #: Integration-cost accounting of this batch (steps taken/rejected and
    #: scalar RHS evaluations); ``None`` on results restored from caches
    #: predating the stepper signature.
    stats: Optional[IntegrationStats] = None

    @property
    def n_conditions(self) -> int:
        """Number of simulated conditions."""
        return self.sin.size

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds per condition."""
        return self.output_waveforms.n_seeds

    def quarantined_indices(self) -> np.ndarray:
        """Condition indices retired by quarantine (empty when none were)."""
        if self.quarantined is None:
            return np.empty(0, dtype=int)
        return np.nonzero(self.quarantined)[0]

    def delay(self) -> np.ndarray:
        """Propagation delay, shape ``(n_conditions, n_seeds)``, in seconds."""
        return self.output_waveforms.propagation_delay(self.input_waveforms,
                                                       self.vdd)

    def output_slew(self) -> np.ndarray:
        """Output transition time, shape ``(n_conditions, n_seeds)``, in seconds."""
        return self.output_waveforms.transition_time(self.vdd)

    def condition(self, index: int) -> TransientResult:
        """Extract one condition as a serial-engine-compatible result."""
        return TransientResult(
            input_waveform=self.input_waveforms.condition(index),
            output_waveform=self.output_waveforms.condition(index),
            vdd=float(self.vdd[index]),
        )


def transient_item_bytes(n_seeds: int, n_steps: int = DEFAULT_STEPS) -> int:
    """Peak bytes one condition row costs inside the batched integrator.

    The shared time matrix plus the ``(len, n_seeds)`` voltage and input
    matrices and the RK4 stage/derivative buffers.  Both
    :func:`repro.spice.sweep.sweep_conditions` and the fused library
    pipeline plan their flat-axis chunks from this single estimate, so a
    ``runtime.configure(max_bytes=...)`` budget means the same thing at
    every batching level.
    """
    ramp_steps, tail_steps = _phase_steps(n_steps)
    base_len = ramp_steps + 1 + tail_steps
    return 8 * base_len * (4 * max(int(n_seeds), 1) + 2)


def _scalarize(value) -> object:
    """Collapse size-1 parameter arrays to Python floats.

    Scalar operands keep NumPy on its fast ufunc paths (notably ``pow`` with
    a scalar exponent) and skip broadcasting machinery in the hot loop.
    """
    array = np.asarray(value, dtype=float)
    return float(array.reshape(-1)[0]) if array.size == 1 else array


def _alpha_power_params(device) -> dict:
    """Pre-combined alpha-power parameters for the fused hot-loop kernels.

    Shared by the fixed engine's :func:`_alpha_power_kernel` and the
    adaptive engine's workspace kernel: device parameters are folded once
    per simulation (``k_drive * width`` into one gain, the subthreshold
    swing into the softplus smoothing and its negated reciprocal, ``alpha``
    into the half exponent) and size-1 arrays collapse to Python scalars so
    the elementwise chains stay on NumPy's fast scalar-operand paths.
    """
    p = device.params
    smoothing = _scalarize(np.asarray(p.subthreshold_swing, dtype=float) / 2.3)
    return {
        "vth0": _scalarize(p.vth0),
        "dibl": _scalarize(p.dibl),
        "kw": _scalarize(np.asarray(p.k_drive, dtype=float)
                         * np.asarray(p.width_um, dtype=float)),
        "lam": _scalarize(p.lambda_clm),
        "coeff": _scalarize(p.vdsat_coeff),
        "alpha_half": _scalarize(np.asarray(p.alpha, dtype=float) * 0.5),
        "smoothing": smoothing,
        "neg_inv_smoothing": -1.0 / smoothing,
    }


def _alpha_power_kernel(nmos, pmos):
    """Fused alpha-power drain-current evaluation for the batched hot loop.

    Computes the same smooth alpha-power model as
    :meth:`repro.devices.alpha_power.AlphaPowerMOSFET.current` (softplus
    overdrive, one half-exponent pow, tanh saturation) but restructured for
    throughput: device parameters are pre-combined once per simulation,
    size-1 parameters collapse to Python scalars, and the elementwise chain
    reuses buffers with ``out=`` instead of allocating a temporary per
    operation.  The reassociated arithmetic differs from the reference
    implementation only at the last-ulp level, far inside the engine's
    ``rtol <= 1e-9`` equivalence budget (enforced by the test suite).

    Returns ``None`` unless both devices are :class:`AlphaPowerMOSFET`
    instances; the engine then falls back to the generic per-device calls
    (e.g. for the virtual-source FinFET model).
    """
    from repro.devices.alpha_power import AlphaPowerMOSFET

    if type(nmos) is not AlphaPowerMOSFET or type(pmos) is not AlphaPowerMOSFET:
        return None

    prepared = (_alpha_power_params(nmos), _alpha_power_params(pmos))

    def one_device(p, vgs, vds_raw):
        vds = np.maximum(vds_raw, 0.0)
        x = p["dibl"] * vds
        x += vgs - p["vth0"]
        # softplus(x, smoothing) in the stable form, with buffer reuse
        t = np.abs(x)
        t *= p["neg_inv_smoothing"]
        np.exp(t, out=t)
        np.log1p(t, out=t)
        t *= p["smoothing"]
        overdrive = np.maximum(x, 0.0)
        overdrive += t
        half_power = np.power(overdrive, p["alpha_half"])
        current = half_power * half_power
        current *= p["kw"]
        gain = p["lam"] * vds
        gain += 1.0
        current *= gain
        vdsat = p["coeff"] * half_power
        np.maximum(vdsat, 1e-3, out=vdsat)
        np.divide(vds, vdsat, out=vdsat)
        np.tanh(vdsat, out=vdsat)
        current *= vdsat
        return current

    def kernel(vgs_n, vgs_p, vds_n, vds_p):
        return (one_device(prepared[0], vgs_n, vds_n),
                one_device(prepared[1], vgs_p, vds_p))

    return kernel


def _estimate_windows(inverter: EquivalentInverter, sin: np.ndarray,
                      cload: np.ndarray, vdd: np.ndarray) -> np.ndarray:
    """Vectorized per-condition post-ramp window (mirrors ``_estimate_window``)."""
    ieff = np.atleast_2d(np.asarray(inverter.effective_current(vdd[:, np.newaxis]),
                                    dtype=float))
    ieff_floor = np.maximum(np.min(ieff, axis=1), 1e-9)
    total_cap = cload + float(np.max(np.asarray(inverter.parasitic_cap)))
    intrinsic = total_cap * vdd / ieff_floor
    # The margin is read from the serial module at call time so both engines
    # always share one window policy (tests monkeypatch it there).
    return 0.5 * sin + _serial._WINDOW_MARGIN * np.maximum(intrinsic, 1e-13)


def simulate_arc_transitions(
    inverter: EquivalentInverter,
    sin,
    cload,
    vdd,
    n_steps: int = DEFAULT_STEPS,
    on_failure: str = "raise",
) -> BatchTransientResult:
    """Simulate every requested condition of one arc in a single batch.

    Parameters
    ----------
    inverter:
        Equivalent inverter produced by :func:`repro.cells.reduce_cell`
        (possibly carrying per-seed parameter arrays).
    sin, cload, vdd:
        Input transition times (seconds), load capacitances (farads) and
        supply voltages (volts); arrays or sequences of equal length.
    n_steps:
        Number of RK4 steps in each condition's initial window.
    on_failure:
        ``"raise"`` (default) aborts the whole batch when a condition's
        integration goes non-finite or exhausts its window extensions --
        the historical fail-fast semantics.  ``"quarantine"`` instead
        retires such conditions per row: after each tail chunk, rows with
        non-finite RK4 state (and, at exhaustion, rows that never
        completed) are marked in ``BatchTransientResult.quarantined`` and
        dropped from further integration; their delay/slew evaluate to
        NaN while every healthy row is computed bit-identically to a
        fail-fast run.

    Returns
    -------
    BatchTransientResult
        Input and output waveform batches, vectorized over
        ``(n_conditions, n_seeds)``.

    Raises
    ------
    ValueError
        For empty, mismatched, non-finite or non-positive condition
        arrays, ``n_steps < 16``, or an unknown ``on_failure``.
    RuntimeError
        Only with ``on_failure="raise"``: if any condition's output fails
        to complete its transition after the maximum number of window
        extensions (same semantics as the serial engine).
    """
    if on_failure not in ("raise", "quarantine"):
        raise ValueError(f"on_failure must be 'raise' or 'quarantine', "
                         f"got {on_failure!r}")
    sin = np.atleast_1d(np.asarray(sin, dtype=float))
    cload = np.atleast_1d(np.asarray(cload, dtype=float))
    vdd = np.atleast_1d(np.asarray(vdd, dtype=float))
    if not (sin.shape == cload.shape == vdd.shape) or sin.ndim != 1:
        raise ValueError("sin, cload and vdd must be 1-D arrays of equal length")
    if sin.size == 0:
        raise ValueError("at least one condition is required")
    for name, values in (("sin", sin), ("cload", cload), ("vdd", vdd)):
        bad = np.nonzero(~np.isfinite(values))[0]
        if bad.size:
            raise ValueError(
                f"{name} contains a non-finite value at condition index "
                f"{int(bad[0])} ({bad.size} of {values.size} non-finite)")
    if np.any(sin <= 0.0) or np.any(cload <= 0.0) or np.any(vdd <= 0.0):
        raise ValueError("sin, cload and vdd must all be positive")
    if n_steps < 16:
        raise ValueError("n_steps must be at least 16")
    faultinject.fire(SITE_INTEGRATE)

    n_cond = sin.size
    falling_output = inverter.arc.output_transition is Transition.FALL

    parasitic = np.asarray(inverter.parasitic_cap, dtype=float)
    miller = np.asarray(inverter.miller_cap, dtype=float)
    n_seeds = max(parasitic.size, miller.size, 1)
    parasitic = np.broadcast_to(parasitic, (n_seeds,))
    miller = np.broadcast_to(miller, (n_seeds,))
    total_cap = cload[:, np.newaxis] + parasitic[np.newaxis, :]

    nmos = inverter.nmos
    pmos = inverter.pmos
    kernel = _alpha_power_kernel(nmos, pmos)
    stats = IntegrationStats(method="rk4")

    def integrate_chunk(t_begin: np.ndarray, t_end: np.ndarray, steps: int,
                        state: np.ndarray, idx: np.ndarray,
                        time_out: np.ndarray, volt_out: np.ndarray
                        ) -> np.ndarray:
        """Lockstep RK4 over per-condition intervals ``[t_begin, t_end]``.

        Everything that is constant across the chunk -- the active rows of
        the condition arrays, the clamp bounds, the ramp slope magnitudes --
        is gathered once here rather than on every RK4 stage evaluation.
        Samples are written straight into the caller-provided ``time_out`` /
        ``volt_out`` views (shapes ``(n_active, steps + 1[, n_seeds])``), and
        the RK4 combination runs in place on the stage buffers, so the hot
        loop allocates nothing beyond the derivative evaluations.  ``state``
        is advanced in place and returned.
        """
        ramp = sin[idx]
        supply = vdd[idx]
        supply_col = supply[:, np.newaxis]
        clamp_low = -0.2 * supply_col
        clamp_high = 1.2 * supply_col
        slope_mag = supply / ramp
        cap = total_cap[idx]

        def derivative(t: np.ndarray, vout: np.ndarray) -> np.ndarray:
            fraction = np.clip(t / ramp, 0.0, 1.0)
            on_ramp = (t >= 0.0) & (t <= ramp)
            if falling_output:  # rising input drives a falling output
                vin = supply * fraction
                dvin = np.where(on_ramp, slope_mag, 0.0)
            else:
                vin = supply * (1.0 - fraction)
                dvin = np.where(on_ramp, -slope_mag, 0.0)
            vin = vin[:, np.newaxis]
            vout_clamped = np.minimum(np.maximum(vout, clamp_low), clamp_high)
            if kernel is not None:
                pull_down, pull_up = kernel(vin, supply_col - vin,
                                            vout_clamped,
                                            supply_col - vout_clamped)
                out = pull_up
                out -= pull_down
                # Adding an all-zero Miller term is exact, so it can be
                # skipped entirely once every active ramp has finished.
                if np.any(dvin):
                    out += miller * dvin[:, np.newaxis]
                out /= cap
                return out
            pull_down = nmos.current(vin, vout_clamped)
            pull_up = pmos.current(supply_col - vin, supply_col - vout_clamped)
            return (pull_up - pull_down + miller * dvin[:, np.newaxis]) / cap

        times = np.linspace(t_begin, t_end, steps + 1, axis=1)
        time_out[:] = times
        dt = times[:, 1] - times[:, 0]
        half = dt / 2.0
        half_col = half[:, np.newaxis]
        dt_col = dt[:, np.newaxis]
        sixth_col = (dt / 6.0)[:, np.newaxis]
        stage = np.empty((idx.size, n_seeds))
        # Fixed-step accounting: every step is "accepted" and costs four
        # RK4 stage evaluations per (condition, seed).
        stats.steps_taken += steps * idx.size
        stats.rhs_evals += 4 * steps * idx.size * n_seeds
        volt_out[:, 0] = state
        for index in range(steps):
            t = times[:, index]
            k1 = derivative(t, state)
            np.multiply(half_col, k1, out=stage)
            stage += state
            k2 = derivative(t + half, stage)
            np.multiply(half_col, k2, out=stage)
            stage += state
            k3 = derivative(t + half, stage)
            np.multiply(dt_col, k3, out=stage)
            stage += state
            k4 = derivative(t + dt, stage)
            # state += dt/6 * (k1 + 2*k2 + 2*k3 + k4), accumulated in k1.
            k2 *= 2.0
            k1 += k2
            k3 *= 2.0
            k1 += k3
            k1 += k4
            k1 *= sixth_col
            state += k1
            volt_out[:, index + 1] = state
        return state

    initial_value = vdd[:, np.newaxis] if falling_output else np.zeros((n_cond, 1))
    vout = np.broadcast_to(initial_value, (n_cond, n_seeds)).copy()

    # Every condition records at least ramp + first tail window; those two
    # chunks are written straight into preallocated matrices (the tail chunk
    # overwrites the shared boundary sample with identical values).  Only the
    # rare extension chunks go through temporary buffers.
    ramp_steps, tail_steps = _phase_steps(n_steps)
    base_len = ramp_steps + 1 + tail_steps
    time_matrix = np.empty((n_cond, base_len))
    volt_matrix = np.empty((n_cond, base_len, n_seeds))

    # Phase A: the input ramps.  All conditions are active; chunk boundaries
    # align with each condition's own ramp end (see the serial engine).
    all_idx = np.arange(n_cond)
    vout = integrate_chunk(np.zeros(n_cond), sin, ramp_steps, vout, all_idx,
                           time_matrix[:, :ramp_steps + 1],
                           volt_matrix[:, :ramp_steps + 1])
    # Identity without an active injector; under injection, NaN-poisoned
    # rows flow into phase B and are caught by the quarantine check below.
    vout = faultinject.corrupt_rows(SITE_STATE, vout)

    # Phase B: per-condition tail windows with geometric extension.  Finished
    # conditions retire from the active set; stragglers keep extending.
    # Extension records are (active indices, times, voltages); active sets
    # are nested, so every condition's chunks are a prefix of the sequence
    # and share offsets with the other conditions still running.
    window = _estimate_windows(inverter, sin, cload, vdd)
    t_start = sin.copy()
    active = all_idx
    extension_records = []
    lengths = np.full(n_cond, base_len, dtype=int)
    quarantined = np.zeros(n_cond, dtype=bool)
    max_extensions = _serial._MAX_EXTENSIONS
    for extension in range(max_extensions):
        if extension == 0:
            chunk_steps = tail_steps
            times = time_matrix[:, ramp_steps:]
            voltages = volt_matrix[:, ramp_steps:]
        else:
            chunk_steps = _extension_steps(tail_steps)
            times = np.empty((active.size, chunk_steps + 1))
            voltages = np.empty((active.size, chunk_steps + 1, n_seeds))
            extension_records.append((active, times, voltages))
            lengths[active] += chunk_steps
        state = integrate_chunk(t_start[active], t_start[active] + window[active],
                                chunk_steps, vout[active], active, times,
                                voltages)
        vout[active] = state

        supply = vdd[active, np.newaxis]
        if falling_output:
            done = np.all(state <= 0.5 * SLEW_LOW_THRESHOLD * supply, axis=1)
        else:
            done = np.all(state >= supply - 0.5 * (1.0 - SLEW_HIGH_THRESHOLD)
                          * supply, axis=1)
        if on_failure == "quarantine":
            # A non-finite state row can never satisfy the completion
            # thresholds (NaN comparisons are False), so without quarantine
            # it would extend to exhaustion and abort the batch.  Retire it
            # now: its stored samples are already NaN, so its delay/slew
            # evaluate to NaN downstream.
            broken = ~np.all(np.isfinite(state), axis=1)
            if np.any(broken):
                quarantined[active[broken]] = True
                done = done | broken
        t_start[active] = times[:, -1]
        still_active = active[~done]
        if still_active.size == 0:
            active = still_active
            break
        window[still_active] *= 1.8
        active = still_active
    else:
        if on_failure == "quarantine":
            # Window extensions exhausted: quarantine the stragglers
            # instead of aborting every healthy condition with them (their
            # samples are poisoned to NaN after the extension merge below).
            quarantined[active] = True
        else:
            first = int(active[0])
            raise RuntimeError(
                f"output of {inverter.cell_name} did not complete its "
                f"transition (sin={sin[first]:.3g}s, cload={cload[first]:.3g}F, "
                f"vdd={vdd[first]:.3g}V); the cell is likely non-functional at "
                f"this operating point ({active.size} of {n_cond} conditions "
                "incomplete)"
            )

    if extension_records:
        # Stragglers needed extra chunks: grow the matrices once, scatter the
        # extension samples in, and pad retired conditions by holding their
        # last sample.
        n_max = int(lengths.max())
        grown_time = np.empty((n_cond, n_max))
        grown_volt = np.empty((n_cond, n_max, n_seeds))
        grown_time[:, :base_len] = time_matrix
        grown_volt[:, :base_len] = volt_matrix
        time_matrix, volt_matrix = grown_time, grown_volt
        offset = base_len
        for idx, times, voltages in extension_records:
            span = times.shape[1] - 1
            time_matrix[idx, offset:offset + span] = times[:, 1:]
            volt_matrix[idx, offset:offset + span] = voltages[:, 1:]
            offset += span
        for index in np.nonzero(lengths < n_max)[0]:
            length = lengths[index]
            time_matrix[index, length:] = time_matrix[index, length - 1]
            volt_matrix[index, length:] = volt_matrix[index, length - 1]

    if np.any(quarantined):
        # A quarantined row must read as "no measurement": non-finite rows
        # are NaN already, but an exhausted (never-completing) row can still
        # have crossed the 50% threshold and would otherwise yield a
        # plausible-looking delay.  Poison them all uniformly.
        volt_matrix[quarantined] = np.nan

    # The input ramps, sampled on the same per-condition time axes with the
    # exact expression of RampStimulus.voltage.
    fraction = np.clip(time_matrix / sin[:, np.newaxis], 0.0, 1.0)
    if falling_output:
        vin_matrix = vdd[:, np.newaxis] * fraction
    else:
        vin_matrix = vdd[:, np.newaxis] * (1.0 - fraction)

    input_batch = WaveformBatch(time_matrix, vin_matrix, valid_len=lengths)
    output_batch = WaveformBatch(time_matrix, volt_matrix, valid_len=lengths)
    return BatchTransientResult(
        input_waveforms=input_batch,
        output_waveforms=output_batch,
        sin=sin,
        cload=cload,
        vdd=vdd,
        quarantined=quarantined if on_failure == "quarantine" else None,
        stats=stats,
    )
