"""Waveforms and timing measurements.

A :class:`Waveform` stores a shared time axis and per-seed voltage samples
(shape ``(n_time,)`` or ``(n_time, n_seeds)``) and provides the measurements
library characterization needs:

* threshold-crossing times with linear interpolation between samples (or
  cubic Hermite interpolation when the waveform carries dense-output
  derivatives; see below),
* propagation delay relative to an input waveform (50 %-to-50 %), and
* transition time (slew), measured between the 20 % and 80 % points and
  rescaled by the usual 0.6 derate so the reported value approximates the
  full-swing transition time.  The same convention is applied to input ramps,
  keeping ``Sin`` and ``Sout`` directly comparable.

All measurements are vectorized: a :class:`Waveform` measures every seed in
one array pass, and a :class:`WaveformBatch` measures a whole
``(n_conditions, n_seeds)`` sweep at once (the extraction side of the batched
transient engine in :mod:`repro.spice.batch`).

**Dense output.**  The adaptive engine (:mod:`repro.spice.adaptive`) samples
each condition on its own *non-uniform* grid whose spacing tracks the local
error, so chord interpolation between samples would lose accuracy exactly
where the steps are widest.  Both waveform classes therefore accept an
optional ``derivative`` array (``dV/dt`` at every sample -- the stepper's
FSAL stage, free of extra evaluations); when present, ``value_at`` and
``crossing_time`` evaluate the C1 cubic Hermite interpolant through each
bracketing segment (crossings are refined by bisection on the cubic), which
matches the integrator's own order on coarse steps.  Without derivatives the
historical linear path is taken, bit-for-bit unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Delay measurement threshold as a fraction of the supply.
DELAY_THRESHOLD = 0.5
#: Lower / upper slew measurement thresholds as fractions of the supply.
SLEW_LOW_THRESHOLD = 0.2
SLEW_HIGH_THRESHOLD = 0.8
#: Fraction of the full swing covered between the slew thresholds.
SLEW_DERATE = SLEW_HIGH_THRESHOLD - SLEW_LOW_THRESHOLD

#: Bisection iterations used to solve the Hermite cubic for a crossing time.
#: Each halves the bracket, so 52 reaches double-precision resolution of the
#: sample interval from any starting bracket.
_HERMITE_BISECTIONS = 52


def _hermite_eval(s: np.ndarray, v0: np.ndarray, v1: np.ndarray,
                  d0: np.ndarray, d1: np.ndarray, dt: np.ndarray
                  ) -> np.ndarray:
    """Cubic Hermite interpolant at normalized position ``s`` in ``[0, 1]``.

    ``v0/v1`` are the segment endpoint values, ``d0/d1`` the endpoint time
    derivatives and ``dt`` the segment duration; all arguments broadcast.
    """
    s2 = s * s
    s3 = s2 * s
    h00 = 2.0 * s3 - 3.0 * s2 + 1.0
    h10 = s3 - 2.0 * s2 + s
    h01 = -2.0 * s3 + 3.0 * s2
    h11 = s3 - s2
    return h00 * v0 + h10 * dt * d0 + h01 * v1 + h11 * dt * d1


class Waveform:
    """Sampled voltage waveform(s) on a common time axis."""

    def __init__(self, time: np.ndarray, voltage: np.ndarray,
                 derivative: Optional[np.ndarray] = None):
        time = np.asarray(time, dtype=float)
        voltage = np.asarray(voltage, dtype=float)
        if time.ndim != 1:
            raise ValueError("time must be a 1-D array")
        if time.size < 2:
            raise ValueError("waveforms need at least two samples")
        if np.any(np.diff(time) <= 0.0):
            raise ValueError("time samples must be strictly increasing")
        if voltage.ndim == 1:
            voltage = voltage[:, np.newaxis]
        if voltage.ndim != 2 or voltage.shape[0] != time.size:
            raise ValueError(
                f"voltage must have shape (n_time,) or (n_time, n_seeds); "
                f"got {voltage.shape} for {time.size} time points"
            )
        if derivative is not None:
            derivative = np.asarray(derivative, dtype=float)
            if derivative.ndim == 1:
                derivative = derivative[:, np.newaxis]
            if derivative.shape != voltage.shape:
                raise ValueError(
                    f"derivative must match the voltage shape "
                    f"{voltage.shape}; got {derivative.shape}"
                )
        self._time = time
        self._voltage = voltage
        self._derivative = derivative

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def time(self) -> np.ndarray:
        """Time samples in seconds, shape ``(n_time,)``."""
        return self._time

    @property
    def voltage(self) -> np.ndarray:
        """Voltage samples in volts, shape ``(n_time, n_seeds)``."""
        return self._voltage

    @property
    def n_seeds(self) -> int:
        """Number of per-seed traces stored in this waveform."""
        return self._voltage.shape[1]

    @property
    def derivative(self) -> Optional[np.ndarray]:
        """Dense-output ``dV/dt`` samples (same shape as voltage), or ``None``."""
        return self._derivative

    def seed(self, index: int) -> "Waveform":
        """Extract the waveform of a single seed."""
        deriv = (None if self._derivative is None
                 else self._derivative[:, index])
        return Waveform(self._time, self._voltage[:, index], derivative=deriv)

    def value_at(self, when: float) -> np.ndarray:
        """Interpolated voltage at time ``when`` for every seed.

        One vectorized pass over all seeds (``searchsorted`` + gather) rather
        than a per-seed ``np.interp`` loop.  With dense-output derivatives
        the bracketing segment is evaluated through its cubic Hermite
        interpolant; otherwise linearly (the historical behaviour).
        """
        when = float(when)
        time = self._time
        if when <= time[0]:
            return self._voltage[0, :].copy()
        if when >= time[-1]:
            return self._voltage[-1, :].copy()
        high = int(np.searchsorted(time, when))
        high = min(max(high, 1), time.size - 1)
        low = high - 1
        span = time[high] - time[low]
        fraction = (when - time[low]) / span
        v0 = self._voltage[low, :]
        v1 = self._voltage[high, :]
        if self._derivative is not None:
            d0 = self._derivative[low, :]
            d1 = self._derivative[high, :]
            hermite_ok = np.isfinite(d0) & np.isfinite(d1)
            hermite = _hermite_eval(fraction, v0, v1, d0, d1, span)
            return np.where(hermite_ok, hermite, v0 + fraction * (v1 - v0))
        return v0 + fraction * (v1 - v0)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def crossing_time(self, threshold: float, rising: Optional[bool] = None
                      ) -> np.ndarray:
        """First time each seed crosses ``threshold`` (volts).

        Parameters
        ----------
        threshold:
            Voltage level to detect.
        rising:
            If ``True`` only upward crossings are considered, if ``False``
            only downward crossings, if ``None`` the overall waveform
            direction (last minus first sample) decides per seed.

        Returns
        -------
        numpy.ndarray
            Crossing times per seed; ``numpy.nan`` where the waveform never
            crosses the threshold.
        """
        # One waveform is the single-condition special case of a batch; the
        # interpolation/direction/edge-case logic lives only there.
        deriv = (None if self._derivative is None
                 else self._derivative[np.newaxis, :, :])
        batch = WaveformBatch(self._time[np.newaxis, :],
                              self._voltage[np.newaxis, :, :],
                              derivative=deriv)
        return batch.crossing_time(float(threshold), rising)[0]

    def transition_time(self, vdd: float, rising: Optional[bool] = None) -> np.ndarray:
        """Slew (transition time) per seed, derated to full swing.

        Measures the time between the 20 % and 80 % supply crossings and
        divides by 0.6 so the result approximates the 0-to-100 % transition
        time of an equivalent linear ramp.
        """
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        low = self.crossing_time(SLEW_LOW_THRESHOLD * vdd, rising)
        high = self.crossing_time(SLEW_HIGH_THRESHOLD * vdd, rising)
        return np.abs(high - low) / SLEW_DERATE

    def propagation_delay(self, reference: "Waveform", vdd: float) -> np.ndarray:
        """50 %-to-50 % propagation delay relative to ``reference`` (the input)."""
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        input_cross = reference.crossing_time(DELAY_THRESHOLD * vdd)
        output_cross = self.crossing_time(DELAY_THRESHOLD * vdd)
        if input_cross.size == 1 and output_cross.size > 1:
            input_cross = np.broadcast_to(input_cross, output_cross.shape)
        return output_cross - input_cross

    def final_value(self) -> np.ndarray:
        """Voltage at the last time sample, per seed."""
        return self._voltage[-1, :].copy()

    def settled(self, target: float, tolerance: float) -> np.ndarray:
        """Boolean per seed: has the waveform settled within ``tolerance`` of ``target``?"""
        return np.abs(self.final_value() - target) <= tolerance


class WaveformBatch:
    """A batch of waveforms over ``(n_conditions, n_time, n_seeds)``.

    Each condition keeps its own time axis (conditions have different ramp
    durations and simulation windows), stored as the rows of a shared 2-D
    ``time`` matrix.  Conditions that finish early are padded by holding their
    last sample; ``valid_len`` records how many samples of each row are real.
    All measurements are single array passes over the whole batch -- this is
    what makes delay/slew extraction of a multi-condition sweep one
    vectorized operation instead of ``n_conditions * n_seeds`` scalar loops.
    """

    def __init__(self, time: np.ndarray, voltage: np.ndarray,
                 valid_len: Optional[np.ndarray] = None,
                 derivative: Optional[np.ndarray] = None):
        time = np.asarray(time, dtype=float)
        voltage = np.asarray(voltage, dtype=float)
        if time.ndim != 2:
            raise ValueError("time must have shape (n_conditions, n_time)")
        if time.shape[1] < 2:
            raise ValueError("waveforms need at least two samples")
        if voltage.ndim == 2:
            voltage = voltage[:, :, np.newaxis]
        if voltage.ndim != 3 or voltage.shape[:2] != time.shape:
            raise ValueError(
                f"voltage must have shape (n_conditions, n_time[, n_seeds]); "
                f"got {voltage.shape} for time shape {time.shape}"
            )
        if valid_len is None:
            valid_len = np.full(time.shape[0], time.shape[1], dtype=int)
        valid_len = np.asarray(valid_len, dtype=int)
        if valid_len.shape != (time.shape[0],):
            raise ValueError("valid_len must have one entry per condition")
        if np.any(valid_len < 2) or np.any(valid_len > time.shape[1]):
            raise ValueError("valid_len entries must be in [2, n_time]")
        if derivative is not None:
            derivative = np.asarray(derivative, dtype=float)
            if derivative.ndim == 2:
                derivative = derivative[:, :, np.newaxis]
            if derivative.shape != voltage.shape:
                raise ValueError(
                    f"derivative must match the voltage shape "
                    f"{voltage.shape}; got {derivative.shape}"
                )
        self._time = time
        self._voltage = voltage
        self._valid_len = valid_len
        self._derivative = derivative

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def time(self) -> np.ndarray:
        """Per-condition time axes, shape ``(n_conditions, n_time)``."""
        return self._time

    @property
    def voltage(self) -> np.ndarray:
        """Voltage samples, shape ``(n_conditions, n_time, n_seeds)``."""
        return self._voltage

    @property
    def valid_len(self) -> np.ndarray:
        """Number of real (non-padding) samples per condition."""
        return self._valid_len

    @property
    def n_conditions(self) -> int:
        """Number of conditions in this batch."""
        return self._time.shape[0]

    @property
    def n_seeds(self) -> int:
        """Number of per-seed traces per condition."""
        return self._voltage.shape[2]

    @property
    def derivative(self) -> Optional[np.ndarray]:
        """Dense-output ``dV/dt`` samples (same shape as voltage), or ``None``."""
        return self._derivative

    def condition(self, index: int) -> Waveform:
        """Extract one condition as a plain :class:`Waveform` (padding trimmed)."""
        length = int(self._valid_len[index])
        deriv = (None if self._derivative is None
                 else self._derivative[index, :length, :])
        return Waveform(self._time[index, :length],
                        self._voltage[index, :length, :],
                        derivative=deriv)

    # ------------------------------------------------------------------
    # Measurements (vectorized over conditions x seeds)
    # ------------------------------------------------------------------
    def crossing_time(self, thresholds, rising: Optional[bool] = None
                      ) -> np.ndarray:
        """First crossing time of per-condition thresholds, one array pass.

        Parameters
        ----------
        thresholds:
            Scalar or array of shape ``(n_conditions,)`` -- the voltage level
            to detect in each condition's traces.
        rising:
            As in :meth:`Waveform.crossing_time`; ``None`` derives the
            direction per (condition, seed) trace.

        Returns
        -------
        numpy.ndarray
            Crossing times of shape ``(n_conditions, n_seeds)``; ``nan``
            where a trace never crosses its threshold.
        """
        n_conditions, n_time = self._time.shape
        n_seeds = self.n_seeds
        thresholds = np.broadcast_to(np.asarray(thresholds, dtype=float),
                                     (n_conditions,))
        time = self._time
        volts = self._voltage
        thr = thresholds[:, np.newaxis, np.newaxis]

        if rising is None:
            # Padding holds the last valid sample, so the final sample is the
            # last real one and the per-trace direction matches the trimmed
            # waveform's ``trace[-1] >= trace[0]`` convention.
            direction = volts[:, -1, :] >= volts[:, 0, :]
        else:
            direction = np.full((n_conditions, n_seeds), bool(rising))
        above = np.where(direction[:, np.newaxis, :], volts >= thr, volts <= thr)
        # Ignore padded samples so they can never be the "first" crossing.
        above &= (np.arange(n_time)[np.newaxis, :]
                  < self._valid_len[:, np.newaxis])[:, :, np.newaxis]

        any_above = above.any(axis=1)
        at_start = above[:, 0, :]
        hit = np.maximum(np.argmax(above, axis=1), 1)
        rows = np.arange(n_conditions)[:, np.newaxis]
        cols = np.arange(n_seeds)[np.newaxis, :]
        v0 = volts[rows, hit - 1, cols]
        v1 = volts[rows, hit, cols]
        t0 = time[rows, hit - 1]
        t1 = time[rows, hit]
        span = v1 - v0
        fraction = (thresholds[:, np.newaxis] - v0) / np.where(span == 0.0, 1.0,
                                                               span)
        crossings = np.where(span == 0.0, t1, t0 + fraction * (t1 - t0))
        if self._derivative is not None:
            # Dense output: solve the bracketing segment's cubic Hermite
            # interpolant for the threshold by bisection.  The linear
            # detection already guarantees a sign change across the
            # bracket, so bisection always converges; segments without a
            # usable bracket (zero span, crossing at the first sample, or
            # non-finite derivatives) keep the linear answer.
            d0 = self._derivative[rows, hit - 1, cols]
            d1 = self._derivative[rows, hit, cols]
            thr2 = thresholds[:, np.newaxis]
            refine = ((span != 0.0) & ~at_start
                      & np.isfinite(d0) & np.isfinite(d1))
            dt = t1 - t0
            f0_positive = (v0 - thr2) > 0.0
            lo = np.zeros_like(v0)
            hi = np.ones_like(v0)
            for _ in range(_HERMITE_BISECTIONS):
                mid = 0.5 * (lo + hi)
                fm = _hermite_eval(mid, v0, v1, d0, d1, dt) - thr2
                same_side = (fm > 0.0) == f0_positive
                lo = np.where(same_side, mid, lo)
                hi = np.where(same_side, hi, mid)
            refined = t0 + 0.5 * (lo + hi) * dt
            crossings = np.where(refine, refined, crossings)
        crossings = np.where(at_start, time[:, :1], crossings)
        return np.where(any_above, crossings, np.nan)

    def transition_time(self, vdd, rising: Optional[bool] = None) -> np.ndarray:
        """Derated 20 %-80 % slew per (condition, seed), one array pass."""
        vdd = np.broadcast_to(np.asarray(vdd, dtype=float), (self.n_conditions,))
        if np.any(vdd <= 0.0):
            raise ValueError("vdd must be positive")
        low = self.crossing_time(SLEW_LOW_THRESHOLD * vdd, rising)
        high = self.crossing_time(SLEW_HIGH_THRESHOLD * vdd, rising)
        return np.abs(high - low) / SLEW_DERATE

    def propagation_delay(self, reference: "WaveformBatch", vdd) -> np.ndarray:
        """50 %-to-50 % delay against a reference batch (the input ramps)."""
        vdd = np.broadcast_to(np.asarray(vdd, dtype=float), (self.n_conditions,))
        if np.any(vdd <= 0.0):
            raise ValueError("vdd must be positive")
        if reference.n_conditions != self.n_conditions:
            raise ValueError("reference batch must have the same conditions")
        input_cross = reference.crossing_time(DELAY_THRESHOLD * vdd)
        output_cross = self.crossing_time(DELAY_THRESHOLD * vdd)
        return output_cross - input_cross

    def final_value(self) -> np.ndarray:
        """Voltage at each condition's last valid sample, per seed."""
        rows = np.arange(self.n_conditions)
        return self._voltage[rows, self._valid_len - 1, :].copy()
