"""Waveforms and timing measurements.

A :class:`Waveform` stores a shared time axis and per-seed voltage samples
(shape ``(n_time,)`` or ``(n_time, n_seeds)``) and provides the measurements
library characterization needs:

* threshold-crossing times with linear interpolation between samples,
* propagation delay relative to an input waveform (50 %-to-50 %), and
* transition time (slew), measured between the 20 % and 80 % points and
  rescaled by the usual 0.6 derate so the reported value approximates the
  full-swing transition time.  The same convention is applied to input ramps,
  keeping ``Sin`` and ``Sout`` directly comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Delay measurement threshold as a fraction of the supply.
DELAY_THRESHOLD = 0.5
#: Lower / upper slew measurement thresholds as fractions of the supply.
SLEW_LOW_THRESHOLD = 0.2
SLEW_HIGH_THRESHOLD = 0.8
#: Fraction of the full swing covered between the slew thresholds.
SLEW_DERATE = SLEW_HIGH_THRESHOLD - SLEW_LOW_THRESHOLD


class Waveform:
    """Sampled voltage waveform(s) on a common time axis."""

    def __init__(self, time: np.ndarray, voltage: np.ndarray):
        time = np.asarray(time, dtype=float)
        voltage = np.asarray(voltage, dtype=float)
        if time.ndim != 1:
            raise ValueError("time must be a 1-D array")
        if time.size < 2:
            raise ValueError("waveforms need at least two samples")
        if np.any(np.diff(time) <= 0.0):
            raise ValueError("time samples must be strictly increasing")
        if voltage.ndim == 1:
            voltage = voltage[:, np.newaxis]
        if voltage.ndim != 2 or voltage.shape[0] != time.size:
            raise ValueError(
                f"voltage must have shape (n_time,) or (n_time, n_seeds); "
                f"got {voltage.shape} for {time.size} time points"
            )
        self._time = time
        self._voltage = voltage

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def time(self) -> np.ndarray:
        """Time samples in seconds, shape ``(n_time,)``."""
        return self._time

    @property
    def voltage(self) -> np.ndarray:
        """Voltage samples in volts, shape ``(n_time, n_seeds)``."""
        return self._voltage

    @property
    def n_seeds(self) -> int:
        """Number of per-seed traces stored in this waveform."""
        return self._voltage.shape[1]

    def seed(self, index: int) -> "Waveform":
        """Extract the waveform of a single seed."""
        return Waveform(self._time, self._voltage[:, index])

    def value_at(self, when: float) -> np.ndarray:
        """Linearly interpolated voltage at time ``when`` for every seed."""
        when = float(when)
        result = np.empty(self.n_seeds)
        for seed_index in range(self.n_seeds):
            result[seed_index] = np.interp(when, self._time, self._voltage[:, seed_index])
        return result

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def crossing_time(self, threshold: float, rising: Optional[bool] = None
                      ) -> np.ndarray:
        """First time each seed crosses ``threshold`` (volts).

        Parameters
        ----------
        threshold:
            Voltage level to detect.
        rising:
            If ``True`` only upward crossings are considered, if ``False``
            only downward crossings, if ``None`` the overall waveform
            direction (last minus first sample) decides per seed.

        Returns
        -------
        numpy.ndarray
            Crossing times per seed; ``numpy.nan`` where the waveform never
            crosses the threshold.
        """
        time = self._time
        volts = self._voltage
        n_seeds = self.n_seeds
        crossings = np.full(n_seeds, np.nan)

        for seed_index in range(n_seeds):
            trace = volts[:, seed_index]
            direction = rising
            if direction is None:
                direction = trace[-1] >= trace[0]
            if direction:
                above = trace >= threshold
            else:
                above = trace <= threshold
            if above[0]:
                crossings[seed_index] = time[0]
                continue
            indices = np.nonzero(above)[0]
            if indices.size == 0:
                continue
            hit = indices[0]
            v0, v1 = trace[hit - 1], trace[hit]
            t0, t1 = time[hit - 1], time[hit]
            if v1 == v0:
                crossings[seed_index] = t1
            else:
                fraction = (threshold - v0) / (v1 - v0)
                crossings[seed_index] = t0 + fraction * (t1 - t0)
        return crossings

    def transition_time(self, vdd: float, rising: Optional[bool] = None) -> np.ndarray:
        """Slew (transition time) per seed, derated to full swing.

        Measures the time between the 20 % and 80 % supply crossings and
        divides by 0.6 so the result approximates the 0-to-100 % transition
        time of an equivalent linear ramp.
        """
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        low = self.crossing_time(SLEW_LOW_THRESHOLD * vdd, rising)
        high = self.crossing_time(SLEW_HIGH_THRESHOLD * vdd, rising)
        return np.abs(high - low) / SLEW_DERATE

    def propagation_delay(self, reference: "Waveform", vdd: float) -> np.ndarray:
        """50 %-to-50 % propagation delay relative to ``reference`` (the input)."""
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        input_cross = reference.crossing_time(DELAY_THRESHOLD * vdd)
        output_cross = self.crossing_time(DELAY_THRESHOLD * vdd)
        if input_cross.size == 1 and output_cross.size > 1:
            input_cross = np.broadcast_to(input_cross, output_cross.shape)
        return output_cross - input_cross

    def final_value(self) -> np.ndarray:
        """Voltage at the last time sample, per seed."""
        return self._voltage[-1, :].copy()

    def settled(self, target: float, tolerance: float) -> np.ndarray:
        """Boolean per seed: has the waveform settled within ``tolerance`` of ``target``?"""
        return np.abs(self.final_value() - target) <= tolerance
