"""Smooth alpha-power-law MOSFET model.

The classic Sakurai-Newton alpha-power law [Sakurai & Newton, JSSC 1990]
expresses the saturation drain current as ``Id = k * W * (Vgs - Vth)**alpha``
and switches to a linear region below ``Vdsat``.  The piecewise form has a
discontinuous derivative at both the threshold and the saturation knee, which
is inconvenient for the fixed-step transient integrator used in
:mod:`repro.spice.transient`.  This implementation therefore uses

* a softplus-smoothed gate overdrive around the threshold voltage, which also
  provides a simple exponential-like subthreshold tail, and
* a ``tanh(Vds / Vdsat)`` interpolation between the linear and saturation
  regions,

both standard tricks in fast timing-oriented device models.  DIBL and
channel-length modulation are included because they are what make delay
scale super-linearly as Vdd approaches Vth -- the effect behind the
non-Gaussian low-Vdd delay distributions of the paper's Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.devices.mosfet import ArrayLike, MOSFET, _softplus


class AlphaPowerMOSFET(MOSFET):
    """Smooth alpha-power-law drain-current model.

    Used for the planar (bulk and SOI) technology nodes in the synthetic
    PDKs.  See :class:`repro.devices.mosfet.DeviceParameters` for the
    parameter definitions.
    """

    def current(self, vgs: ArrayLike, vds: ArrayLike) -> np.ndarray:
        """Drain current magnitude in amperes (vectorized).

        Parameters
        ----------
        vgs, vds:
            Source-referenced gate and drain voltage magnitudes.  Values are
            broadcast against each other and against any per-seed parameter
            arrays stored in the device.
        """
        p = self._params
        vgs = np.asarray(vgs, dtype=float)
        vds = np.maximum(np.asarray(vds, dtype=float), 0.0)

        # Smoothing scale tied to the subthreshold swing: a swing of
        # ~85 mV/decade corresponds to a thermal-ish smoothing of ~37 mV.
        smoothing = np.asarray(p.subthreshold_swing, dtype=float) / 2.3

        vth_eff = np.asarray(p.vth0, dtype=float) - np.asarray(p.dibl, dtype=float) * vds
        overdrive = _softplus(vgs - vth_eff, smoothing)

        alpha = np.asarray(p.alpha, dtype=float)
        # One pow serves both terms: overdrive**alpha == (overdrive**(alpha/2))**2
        # up to floating-point noise, and pow is the most expensive operation
        # in this hot path.
        half_power = np.power(overdrive, alpha * 0.5)
        isat = (
            np.asarray(p.k_drive, dtype=float)
            * np.asarray(p.width_um, dtype=float)
            * (half_power * half_power)
            * (1.0 + np.asarray(p.lambda_clm, dtype=float) * vds)
        )

        vdsat = np.maximum(np.asarray(p.vdsat_coeff, dtype=float) * half_power,
                           1e-3)
        saturation = np.tanh(vds / vdsat)
        return isat * saturation
