"""Effective switching current (Ieff) evaluation.

The compact timing model of the paper normalizes delay by the *effective*
current rather than the saturated on-current, following Na et al. (IEDM 2002)
and the intrinsic-delay formulation of Khakifirooz & Antoniadis:

.. math::

    I_{eff} = \\frac{I_D(V_{gs}=V_{dd},\\ V_{ds}=V_{dd}/2)
                    + I_D(V_{gs}=V_{dd}/2,\\ V_{ds}=V_{dd})}{2}

``Ieff`` is an average of the drain current at the two half-swing bias points
traversed during a switching event and tracks the delay of real gates far
better than ``Idsat``.  The paper assumes ``Ieff`` is known for every input
vector (it is cheap to obtain from the device model or a two-point DC
simulation); this module provides exactly that evaluation, vectorized over
Monte Carlo seeds.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.devices.mosfet import MOSFET

ArrayLike = Union[float, np.ndarray]


def effective_current(device: MOSFET, vdd: ArrayLike) -> np.ndarray:
    """Effective switching current of ``device`` at supply ``vdd``.

    Parameters
    ----------
    device:
        Any compact MOSFET model.  For a multi-input cell this should be the
        equivalent switching device produced by
        :mod:`repro.cells.equivalent_inverter`.
    vdd:
        Supply voltage in volts; may be an array (broadcast against per-seed
        device parameters).

    Returns
    -------
    numpy.ndarray
        ``Ieff`` in amperes, broadcast over seeds and supply values.
    """
    vdd = np.asarray(vdd, dtype=float)
    if np.any(vdd <= 0.0):
        raise ValueError("vdd must be strictly positive")
    high_gate = device.current(vdd, vdd / 2.0)
    low_gate = device.current(vdd / 2.0, vdd)
    return 0.5 * (high_gate + low_gate)


def on_current(device: MOSFET, vdd: ArrayLike) -> np.ndarray:
    """Classic saturated on-current ``Id(Vgs=Vds=Vdd)``.

    Provided for comparison with the historical ``Cload * Vdd / Idsat`` delay
    metric; the ablation benchmarks contrast it against ``Ieff``.
    """
    vdd = np.asarray(vdd, dtype=float)
    if np.any(vdd <= 0.0):
        raise ValueError("vdd must be strictly positive")
    return device.current(vdd, vdd)
