"""Common MOSFET interface and parameter container.

The characterization flows never touch SPICE-level model cards; they interact
with devices exclusively through the small interface defined here:

* ``current(vgs, vds)`` -- drain current magnitude for source-referenced
  terminal voltages given as *magnitudes* (PMOS devices are handled by the
  circuit code mirroring voltages around the supply rail), broadcast over
  NumPy arrays so thousands of Monte Carlo seeds evaluate in one call;
* ``with_variation(...)`` -- return a copy of the device with per-seed
  threshold-voltage shifts, drive-strength multipliers and effective-length
  multipliers applied;
* ``scaled(width_multiplier)`` -- return a copy with the channel width scaled,
  used by the equivalent-inverter reduction of multi-input cells.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


class Polarity(str, enum.Enum):
    """Transistor polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class DeviceParameters:
    """Parameters shared by all compact MOSFET models in this library.

    All voltage-like fields are in volts, widths in micrometres and currents
    in amperes.  Every field may be a scalar or a NumPy array; arrays are
    interpreted as per-seed values for vectorized Monte Carlo evaluation.

    Attributes
    ----------
    polarity:
        NMOS or PMOS.
    width_um:
        Drawn channel width in micrometres.
    vth0:
        Zero-bias threshold voltage magnitude.
    alpha:
        Velocity-saturation exponent of the alpha-power law (between 1 for
        fully velocity-saturated short-channel devices and 2 for long-channel
        square-law devices).
    k_drive:
        Drive factor in A / (um * V**alpha): saturation current per unit width
        at one volt of gate overdrive.
    dibl:
        Drain-induced barrier lowering coefficient (V/V); lowers the threshold
        voltage proportionally to the drain bias.
    lambda_clm:
        Channel-length-modulation coefficient (1/V).
    vdsat_coeff:
        Coefficient mapping gate overdrive to the saturation drain voltage:
        ``Vdsat = vdsat_coeff * Vov ** (alpha / 2)``.
    subthreshold_swing:
        Subthreshold swing in V/decade; controls leakage below threshold and
        the smoothness of the transition around ``vth0``.
    leff_nm:
        Effective channel length in nanometres (informational; drive scaling
        with length variation is applied through ``k_drive`` multipliers).
    temperature_c:
        Junction temperature in Celsius (informational; the synthetic PDKs
        pre-bake temperature into ``vth0``/``k_drive``).
    """

    polarity: Polarity
    width_um: ArrayLike = 1.0
    vth0: ArrayLike = 0.35
    alpha: ArrayLike = 1.3
    k_drive: ArrayLike = 6.0e-4
    dibl: ArrayLike = 0.08
    lambda_clm: ArrayLike = 0.05
    vdsat_coeff: ArrayLike = 0.55
    subthreshold_swing: ArrayLike = 0.085
    leff_nm: ArrayLike = 30.0
    temperature_c: float = 25.0

    def replace(self, **changes) -> "DeviceParameters":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


class MOSFET:
    """Abstract compact MOSFET model.

    Concrete models implement :meth:`current`.  The remaining helpers
    (variation application, width scaling) are shared.
    """

    def __init__(self, params: DeviceParameters):
        self._params = params

    @property
    def params(self) -> DeviceParameters:
        """The device parameters backing this model instance."""
        return self._params

    @property
    def polarity(self) -> Polarity:
        """Transistor polarity (NMOS or PMOS)."""
        return self._params.polarity

    @property
    def width_um(self) -> ArrayLike:
        """Channel width in micrometres."""
        return self._params.width_um

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def current(self, vgs: ArrayLike, vds: ArrayLike) -> np.ndarray:
        """Drain current magnitude in amperes.

        ``vgs`` and ``vds`` are source-referenced voltage *magnitudes*
        (already mirrored for PMOS by the caller).  Negative ``vds`` values
        are clamped to zero; gate voltages below threshold produce the
        (small) subthreshold current of the specific model.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def scaled(self, width_multiplier: ArrayLike) -> "MOSFET":
        """Return a copy of this device with its width multiplied.

        Used by the equivalent-inverter reduction: a series stack of two
        identical transistors behaves (to first order) like a single device
        of half the width.
        """
        new_params = self._params.replace(
            width_um=np.asarray(self._params.width_um) * np.asarray(width_multiplier)
        )
        return type(self)(new_params)

    def with_variation(
        self,
        delta_vth: ArrayLike = 0.0,
        drive_multiplier: ArrayLike = 1.0,
        leff_multiplier: ArrayLike = 1.0,
    ) -> "MOSFET":
        """Return a copy with process variation applied.

        Parameters
        ----------
        delta_vth:
            Additive threshold-voltage shift in volts (per seed).
        drive_multiplier:
            Multiplicative factor on the drive strength ``k_drive`` (per
            seed); captures mobility / saturation-velocity variation.
        leff_multiplier:
            Multiplicative factor on the effective channel length.  Shorter
            channels drive more current, so ``k_drive`` is scaled by
            ``1 / leff_multiplier`` and DIBL increases for shorter channels.
        """
        delta_vth = np.asarray(delta_vth, dtype=float)
        drive_multiplier = np.asarray(drive_multiplier, dtype=float)
        leff_multiplier = np.asarray(leff_multiplier, dtype=float)
        if np.any(leff_multiplier <= 0.0):
            raise ValueError("leff_multiplier must be strictly positive")
        if np.any(drive_multiplier <= 0.0):
            raise ValueError("drive_multiplier must be strictly positive")
        params = self._params
        new_params = params.replace(
            vth0=np.asarray(params.vth0) + delta_vth,
            k_drive=np.asarray(params.k_drive) * drive_multiplier / leff_multiplier,
            dibl=np.asarray(params.dibl) / leff_multiplier,
            leff_nm=np.asarray(params.leff_nm) * leff_multiplier,
        )
        return type(self)(new_params)

    # ------------------------------------------------------------------
    # Convenience metrics
    # ------------------------------------------------------------------
    def on_current(self, vdd: ArrayLike) -> np.ndarray:
        """Saturated on-current ``Id(Vgs=Vdd, Vds=Vdd)``."""
        vdd = np.asarray(vdd, dtype=float)
        return self.current(vdd, vdd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        width = np.asarray(self._params.width_um)
        width_repr = f"{width!r}" if width.ndim else f"{float(width):.3g}um"
        return f"{type(self).__name__}({self.polarity.value}, W={width_repr})"


def _softplus(x: np.ndarray, sharpness: np.ndarray) -> np.ndarray:
    """Numerically stable softplus used for smooth threshold clamping.

    ``softplus(x) = sharpness * log(1 + exp(x / sharpness))`` approaches
    ``max(x, 0)`` as ``sharpness`` goes to zero while staying differentiable,
    which keeps the transient solver well behaved around the threshold.

    Implemented in the branch-free stable form
    ``max(x, 0) + sharpness * log1p(exp(-|x| / sharpness))`` -- the argument
    of ``exp`` is never positive, so no overflow guard (and no ``np.where``
    select, the costliest operation in the old formulation) is needed.  This
    sits on the innermost loop of both transient engines: it runs four times
    per RK4 step per device.
    """
    x = np.asarray(x, dtype=float)
    sharpness = np.asarray(sharpness, dtype=float)
    scaled = np.abs(x) / sharpness
    return np.maximum(x, 0.0) + sharpness * np.log1p(np.exp(-scaled))
