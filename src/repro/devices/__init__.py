"""Transistor-level device models.

This package provides the compact MOSFET models that power the transient
circuit simulator in :mod:`repro.spice`.  Two model families are available:

* :class:`~repro.devices.alpha_power.AlphaPowerMOSFET` -- a smooth variant of
  the classic Sakurai-Newton alpha-power law, appropriate for planar bulk and
  SOI technologies (45 nm down to 20 nm in the synthetic PDKs).
* :class:`~repro.devices.virtual_source.VirtualSourceMOSFET` -- a simplified
  virtual-source / MVS-style model with a saturation-function drain current,
  used for the FinFET nodes (16 nm / 14 nm).

Both expose the same interface (:class:`~repro.devices.mosfet.MOSFET`), accept
NumPy-array parameters so a single instance can represent thousands of Monte
Carlo seeds, and provide the effective-current evaluation
(:func:`~repro.devices.effective_current.effective_current`) that the paper's
compact timing model requires.
"""

from repro.devices.mosfet import DeviceParameters, MOSFET, Polarity
from repro.devices.alpha_power import AlphaPowerMOSFET
from repro.devices.virtual_source import VirtualSourceMOSFET
from repro.devices.capacitance import CapacitanceModel
from repro.devices.effective_current import effective_current, on_current

__all__ = [
    "AlphaPowerMOSFET",
    "CapacitanceModel",
    "DeviceParameters",
    "MOSFET",
    "Polarity",
    "VirtualSourceMOSFET",
    "effective_current",
    "on_current",
]
