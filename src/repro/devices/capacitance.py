"""Gate and parasitic capacitance model.

Standard-cell timing depends on three capacitive contributions:

* the external load ``Cload`` (an input to characterization),
* the parasitic drain/junction capacitance of the devices tied to the output
  node (the ``Cpar`` the compact timing model extracts), and
* the gate capacitance presented by a cell input (needed to express loads in
  "standard loads" and by the downstream STA engine).

The model is intentionally simple -- per-micrometre coefficients scaled by
device width -- because the paper's flow only needs the *dependence* of delay
on these capacitances, not layout-accurate extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CapacitanceModel:
    """Per-width capacitance coefficients of a technology node.

    Attributes
    ----------
    cgate_per_um:
        Gate capacitance per micrometre of channel width, in farads.
    cdrain_per_um:
        Drain junction + local interconnect capacitance per micrometre of
        channel width, in farads.
    cmiller_per_um:
        Gate-to-drain overlap (Miller) capacitance per micrometre, in farads.
        This couples the switching input into the output node and produces
        the characteristic overshoot at the start of a transition.
    cwire_fixed:
        Fixed wiring capacitance added to every output node, in farads.
    """

    cgate_per_um: float
    cdrain_per_um: float
    cmiller_per_um: float
    cwire_fixed: float = 0.0

    def gate_capacitance(self, width_um: ArrayLike) -> np.ndarray:
        """Gate capacitance of a device of the given width, in farads."""
        return np.asarray(width_um, dtype=float) * self.cgate_per_um

    def drain_capacitance(self, width_um: ArrayLike) -> np.ndarray:
        """Drain parasitic capacitance of a device of the given width."""
        return np.asarray(width_um, dtype=float) * self.cdrain_per_um

    def miller_capacitance(self, width_um: ArrayLike) -> np.ndarray:
        """Gate-to-drain coupling capacitance of a device of the given width."""
        return np.asarray(width_um, dtype=float) * self.cmiller_per_um

    def output_parasitic(
        self, pull_up_width_um: ArrayLike, pull_down_width_um: ArrayLike
    ) -> np.ndarray:
        """Total parasitic capacitance on a cell output node, in farads.

        Sums the drain contributions of the pull-up and pull-down devices
        connected to the output plus the fixed wiring term.
        """
        total = (
            self.drain_capacitance(pull_up_width_um)
            + self.drain_capacitance(pull_down_width_um)
            + self.cwire_fixed
        )
        return np.asarray(total, dtype=float)

    def scaled(self, multiplier: float) -> "CapacitanceModel":
        """Return a copy with all per-width coefficients multiplied.

        Used by the process-variation model to represent parasitic-cap
        variation (e.g. junction depth or spacer thickness variation).
        """
        if multiplier <= 0.0:
            raise ValueError("capacitance multiplier must be positive")
        return CapacitanceModel(
            cgate_per_um=self.cgate_per_um * multiplier,
            cdrain_per_um=self.cdrain_per_um * multiplier,
            cmiller_per_um=self.cmiller_per_um * multiplier,
            cwire_fixed=self.cwire_fixed * multiplier,
        )
