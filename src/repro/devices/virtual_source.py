"""Virtual-source-style MOSFET model for FinFET nodes.

The MIT virtual-source (VS/MVS) model describes nanoscale transistors with a
charge-times-velocity formulation ``Id = W * Qx0 * vx0 * Fsat`` where ``Qx0``
is the charge at the virtual source (an empirical function of gate overdrive)
and ``Fsat`` is a saturation function of the drain bias.  The authors of the
reproduced paper used exactly this family of models for their 14 nm test case
(reference [20] and [24] of the paper).

This implementation keeps the structure but uses compact empirical forms:

* virtual-source charge: ``Qx0 = Cinv * n * phi_t * log(1 + exp(Vov / (n*phi_t)))``
  which transitions smoothly from exponential subthreshold behaviour to the
  linear strong-inversion charge;
* saturation function: ``Fsat = (Vds/Vdsat) / (1 + (Vds/Vdsat)**beta)**(1/beta)``
  with ``beta`` around 1.8, the form used by the MVS model;
* DIBL and a mild channel-length-modulation term as in the alpha-power model.

The different functional shape relative to :class:`AlphaPowerMOSFET` is
intentional: the paper's point is that the *compact timing model* transfers
across technologies with different underlying device physics, so the FinFET
PDKs should not share the planar drain-current equation exactly.
"""

from __future__ import annotations

import numpy as np

from repro.devices.mosfet import ArrayLike, MOSFET, _softplus

#: Thermal voltage at room temperature, in volts.
_PHI_T = 0.0258

#: Shape exponent of the MVS saturation function.
_BETA_SAT = 1.8


class VirtualSourceMOSFET(MOSFET):
    """Simplified virtual-source (MVS-style) drain-current model.

    Interprets the shared :class:`~repro.devices.mosfet.DeviceParameters`
    fields as follows:

    * ``k_drive`` -- product of inversion capacitance and injection velocity,
      i.e. the drive current per micrometre of width per volt of charge
      overdrive (A / (um * V));
    * ``alpha`` -- strong-inversion charge exponent (close to 1 for FinFETs);
    * ``vdsat_coeff`` -- saturation voltage per volt of overdrive.
    """

    def current(self, vgs: ArrayLike, vds: ArrayLike) -> np.ndarray:
        """Drain current magnitude in amperes (vectorized)."""
        p = self._params
        vgs = np.asarray(vgs, dtype=float)
        vds = np.maximum(np.asarray(vds, dtype=float), 0.0)

        swing = np.asarray(p.subthreshold_swing, dtype=float)
        ideality = np.maximum(swing / (_PHI_T * np.log(10.0)), 1.0)
        n_phi_t = ideality * _PHI_T

        vth_eff = np.asarray(p.vth0, dtype=float) - np.asarray(p.dibl, dtype=float) * vds
        # softplus of the normalized overdrive, in the shared stable form.
        charge_overdrive = n_phi_t * _softplus((vgs - vth_eff) / n_phi_t, 1.0)

        alpha = np.asarray(p.alpha, dtype=float)
        drive = (
            np.asarray(p.k_drive, dtype=float)
            * np.asarray(p.width_um, dtype=float)
            * np.power(charge_overdrive, alpha)
            * (1.0 + np.asarray(p.lambda_clm, dtype=float) * vds)
        )

        vdsat = np.asarray(p.vdsat_coeff, dtype=float) * charge_overdrive + 1e-3
        ratio = vds / vdsat
        fsat = ratio / np.power(1.0 + np.power(ratio, _BETA_SAT), 1.0 / _BETA_SAT)
        return drive * fsat
