"""Post-processing: distribution estimation, comparisons, and reporting.

These utilities turn raw characterization output into the artefacts the
paper's evaluation section shows: probability-density estimates (Fig. 9),
error-versus-samples comparisons and speedup statements (Figs. 6-8), and
plain-text tables (Table I) that the benchmark harness prints.
"""

from repro.analysis.distributions import (
    DistributionSummary,
    empirical_pdf,
    gaussian_pdf,
    kde_pdf,
    normality_deviation,
    summarize,
)
from repro.analysis.comparison import (
    CurveComparison,
    compare_curves,
    crossover_budget,
)
from repro.analysis.reporting import (
    format_cache_stats,
    format_curve_table,
    format_ledger,
    format_speedups,
    format_table,
)

__all__ = [
    "CurveComparison",
    "DistributionSummary",
    "compare_curves",
    "crossover_budget",
    "empirical_pdf",
    "format_cache_stats",
    "format_curve_table",
    "format_ledger",
    "format_speedups",
    "format_table",
    "gaussian_pdf",
    "kde_pdf",
    "normality_deviation",
    "summarize",
]
