"""Comparisons between accuracy curves.

Given the error-versus-samples curves produced by
:class:`repro.experiments.ExperimentRunner`, these helpers extract the
numbers the paper states in prose: which flow wins at each budget, the
speedup at matched accuracy, and the budget at which the LUT baseline finally
catches up with the proposed flow (the crossover).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.runner import AccuracyCurve, SpeedupSummary, compute_speedup


@dataclass(frozen=True)
class CurveComparison:
    """Side-by-side comparison of several accuracy curves."""

    metric: str
    training_sizes: Sequence[int]
    errors_by_method: Dict[str, np.ndarray]
    speedups: Sequence[SpeedupSummary]

    def winner_at(self, training_size: int) -> str:
        """Method with the lowest error at a given training budget."""
        sizes = list(self.training_sizes)
        if training_size not in sizes:
            raise KeyError(f"training size {training_size} was not evaluated")
        index = sizes.index(training_size)
        best_method, best_error = None, np.inf
        for method, errors in self.errors_by_method.items():
            if errors[index] < best_error:
                best_method, best_error = method, float(errors[index])
        return best_method


def compare_curves(curves: Dict[str, AccuracyCurve],
                   reference_method: str = "bayesian",
                   target_error_percent: Optional[float] = None) -> CurveComparison:
    """Build a :class:`CurveComparison` with speedups of the reference method.

    Parameters
    ----------
    curves:
        Mapping of method name to its accuracy curve (all on the same
        training sizes and metric).
    reference_method:
        The method whose speedup over every other method is reported.
    target_error_percent:
        Accuracy at which to match budgets; defaults to the loosest error
        both methods reach.
    """
    if reference_method not in curves:
        raise KeyError(f"reference method {reference_method!r} not in curves")
    metrics = {curve.metric for curve in curves.values()}
    if len(metrics) != 1:
        raise ValueError("all curves must share a metric")
    sizes = {curve.training_sizes for curve in curves.values()}
    if len(sizes) != 1:
        raise ValueError("all curves must share the same training sizes")

    reference = curves[reference_method]
    speedups: List[SpeedupSummary] = []
    for method, curve in curves.items():
        if method == reference_method:
            continue
        summary = compute_speedup(reference, curve, target_error_percent)
        if summary is not None:
            speedups.append(summary)
    return CurveComparison(
        metric=metrics.pop(),
        training_sizes=list(sizes.pop()),
        errors_by_method={name: curve.mean_error_percent.copy()
                          for name, curve in curves.items()},
        speedups=tuple(speedups),
    )


def crossover_budget(fast: AccuracyCurve, slow: AccuracyCurve) -> Optional[int]:
    """Smallest evaluated budget at which ``slow`` matches ``fast``'s best error.

    Returns ``None`` if ``slow`` never reaches it within the evaluated sizes.
    """
    target = float(np.min(fast.mean_error_percent))
    reached = np.nonzero(slow.mean_error_percent <= target)[0]
    if reached.size == 0:
        return None
    return int(slow.training_sizes[int(reached[0])])
