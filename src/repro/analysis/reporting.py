"""Plain-text rendering of tables and curves.

The benchmark harness regenerates the paper's tables and figures as text:
Table I as a fixed-width table, Figs. 6-8 as error-versus-samples series, and
the speedup statements as one-line summaries.  Keeping the rendering here (and
out of the benchmarks) makes it reusable from the examples and easy to test.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.experiments.runner import AccuracyCurve, SpeedupSummary
from repro.runtime.accounting import RunLedger


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table.

    Floats are shown with four significant digits; all other values use
    ``str``.
    """
    headers = [str(h) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        if len(rendered) != len(headers):
            raise ValueError("every row must have one entry per header")
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(headers))
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_curve_table(curves: Dict[str, AccuracyCurve], title: str = "") -> str:
    """Render error-versus-samples curves side by side (a Fig. 6/7/8 analogue)."""
    if not curves:
        raise ValueError("at least one curve is required")
    sizes = {curve.training_sizes for curve in curves.values()}
    if len(sizes) != 1:
        raise ValueError("all curves must share the same training sizes")
    training_sizes = list(sizes.pop())
    methods = list(curves)
    headers = ["samples"] + [f"{name} err%" for name in methods] + [
        f"{name} runs" for name in methods]
    rows = []
    for index, size in enumerate(training_sizes):
        row: List[object] = [size]
        row.extend(float(curves[name].mean_error_percent[index]) for name in methods)
        row.extend(float(curves[name].simulation_runs[index]) for name in methods)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_speedups(speedups: Sequence[SpeedupSummary], title: str = "") -> str:
    """Render speedup summaries, one per line."""
    lines = [title] if title else []
    if not speedups:
        lines.append("(no speedup could be computed)")
    for summary in speedups:
        lines.append(summary.describe())
    return "\n".join(lines)


def format_ledger(ledger: RunLedger, title: str = "Run ledger") -> str:
    """Render a :class:`~repro.runtime.accounting.RunLedger` as text.

    Six sections (each omitted when empty): wall time per stage,
    simulation runs per label, free-form metrics (solver iterations, gate
    evaluations, ...), work-group size summaries (e.g. the fused library
    pipeline's rows per equivalent-inverter signature group), cache
    hit/miss/eviction activity, and the failures recorded by non-strict
    (gracefully degrading) runs.

    Caches with a durable tier attached contribute extra activity rows
    named ``"<cache>:disk"`` (recorded by ``RunLedger.caches()``), so
    warm-start traffic against the on-disk store is visible in the same
    cache table.
    """
    blocks: List[str] = []
    stages = ledger.stages()
    if stages:
        blocks.append(format_table(
            ["stage", "calls", "seconds"],
            [[name, int(entry["calls"]), float(entry["wall_s"])]
             for name, entry in stages.items()],
            title=title))
        title = ""
    simulations = ledger.simulations_by_label()
    if simulations:
        rows: List[Sequence[object]] = [[label, runs] for label, runs
                                        in sorted(simulations.items())]
        rows.append(["TOTAL", ledger.simulations_total])
        blocks.append(format_table(["simulations", "runs"], rows, title=title))
        title = ""
    metrics = ledger.metrics()
    if metrics:
        blocks.append(format_table(
            ["metric", "value"],
            [[name, value] for name, value in sorted(metrics.items())],
            title=title))
        title = ""
    groups = ledger.group_sizes()
    if groups:
        rows = []
        for name, sizes in sorted(groups.items()):
            if sizes:
                rows.append([name, len(sizes), sum(sizes), min(sizes),
                             float(sum(sizes)) / len(sizes), max(sizes)])
            else:
                rows.append([name, 0, 0, 0, 0.0, 0])
        blocks.append(format_table(
            ["groups", "count", "items", "min", "mean", "max"], rows,
            title=title))
        title = ""
    caches = ledger.cache_activity()
    if caches:
        blocks.append(format_table(
            ["cache", "hits", "misses", "evictions"],
            [[name, activity["hits"], activity["misses"], activity["evictions"]]
             for name, activity in sorted(caches.items())],
            title=title))
        title = ""
    failures = ledger.failures()
    if failures:
        blocks.append(format_table(
            ["failure", "stage", "error", "attempts"],
            [[report.unit, report.stage,
              f"{report.error_type}: {report.error}" if report.error_type
              else report.error, report.attempts]
             for report in failures],
            title=title))
    if not blocks:
        return title + "\n(empty ledger)" if title else "(empty ledger)"
    return "\n\n".join(blocks)


def format_cache_stats(stats: Dict[str, object],
                       title: str = "Cache tiers") -> str:
    """Render ``repro.runtime.cache_stats()`` including the durable tier.

    One row per registered cache: the memory-tier counters, then -- for
    durable caches with a :class:`~repro.runtime.persist.DiskStore`
    attached -- the disk-tier hit/miss/write traffic, resident entry bytes,
    and the number of corrupt entries quarantined.  Memory-only caches show
    ``-`` in the disk columns so warm-start coverage is obvious at a
    glance.
    """
    headers = ["cache", "hits", "misses", "evictions", "entries", "bytes",
               "disk hits", "disk misses", "disk writes", "disk bytes",
               "quarantined"]
    rows = []
    for name, s in sorted(stats.items()):
        row: List[object] = [name, s.hits, s.misses, s.evictions,
                             s.entries, s.current_bytes]
        if getattr(s, "disk_attached", False):
            row.extend([s.disk_hits, s.disk_misses, s.disk_writes,
                        s.disk_bytes, s.disk_quarantined])
        else:
            row.extend(["-", "-", "-", "-", "-"])
        rows.append(row)
    return format_table(headers, rows, title=title)
