"""Distribution estimation for delay / slew ensembles.

The statistical flow produces *samples* of delay and slew per operating
point.  The paper's Fig. 9 compares the resulting probability density against
the Monte Carlo baseline and against the Gaussian implied by a statistical
look-up table; the helpers here compute those densities (histogram and
Gaussian kernel density estimates), their summary moments, and a simple
measure of how non-Gaussian an ensemble is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a sampled distribution.

    Attributes
    ----------
    mean, std:
        First two moments.
    skewness:
        Fisher skewness (0 for a Gaussian).
    excess_kurtosis:
        Excess kurtosis (0 for a Gaussian).
    quantiles:
        The (1 %, 50 %, 99 %) quantiles, the values timing sign-off cares
        about most.
    n_samples:
        Ensemble size.
    """

    mean: float
    std: float
    skewness: float
    excess_kurtosis: float
    quantiles: Tuple[float, float, float]
    n_samples: int


def _validate_samples(samples) -> np.ndarray:
    samples = np.asarray(samples, dtype=float).reshape(-1)
    if samples.size < 2:
        raise ValueError("at least two samples are required")
    if not np.all(np.isfinite(samples)):
        raise ValueError("samples contain non-finite values")
    return samples


def summarize(samples) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` for an ensemble."""
    samples = _validate_samples(samples)
    quantiles = np.quantile(samples, [0.01, 0.50, 0.99])
    return DistributionSummary(
        mean=float(np.mean(samples)),
        std=float(np.std(samples)),
        skewness=float(stats.skew(samples)),
        excess_kurtosis=float(stats.kurtosis(samples)),
        quantiles=(float(quantiles[0]), float(quantiles[1]), float(quantiles[2])),
        n_samples=int(samples.size),
    )


def summarize_many(samples: np.ndarray) -> list:
    """One :class:`DistributionSummary` per row of a sample matrix.

    Vectorized over rows: moments, (biased) skewness/kurtosis and the three
    sign-off quantiles of all ensembles are computed in single array passes,
    so summarizing every endpoint of a large netlist costs one NumPy sweep
    instead of per-endpoint scipy calls.  Agrees with mapping
    :func:`summarize` over the rows (enforced by the test suite).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[1] < 2:
        raise ValueError("samples must be (n_rows, n_samples>=2)")
    if not np.all(np.isfinite(samples)):
        raise ValueError("samples contain non-finite values")
    n = samples.shape[1]
    mean = samples.mean(axis=1)
    centered = samples - mean[:, np.newaxis]
    m2 = np.mean(centered ** 2, axis=1)
    m3 = np.mean(centered ** 3, axis=1)
    m4 = np.mean(centered ** 4, axis=1)
    std = np.sqrt(m2)
    safe_m2 = np.where(m2 > 0.0, m2, 1.0)
    # Degenerate (zero-variance) rows get nan, matching scipy's skew/kurtosis.
    skewness = np.where(m2 > 0.0, m3 / safe_m2 ** 1.5, np.nan)
    kurtosis = np.where(m2 > 0.0, m4 / safe_m2 ** 2 - 3.0, np.nan)
    quantiles = np.quantile(samples, [0.01, 0.50, 0.99], axis=1)
    return [DistributionSummary(
        mean=float(mean[row]), std=float(std[row]),
        skewness=float(skewness[row]),
        excess_kurtosis=float(kurtosis[row]),
        quantiles=(float(quantiles[0, row]), float(quantiles[1, row]),
                   float(quantiles[2, row])),
        n_samples=n,
    ) for row in range(samples.shape[0])]


def empirical_pdf(samples, n_bins: int = 40, value_range: Tuple[float, float] | None = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram density estimate.

    Returns ``(bin_centers, density)`` with the density normalized so its
    integral over the bins is one.
    """
    samples = _validate_samples(samples)
    if n_bins < 2:
        raise ValueError("n_bins must be at least 2")
    density, edges = np.histogram(samples, bins=n_bins, range=value_range, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def kde_pdf(samples, evaluation_points=None, n_points: int = 200
            ) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian kernel density estimate.

    Parameters
    ----------
    samples:
        The ensemble.
    evaluation_points:
        Points at which to evaluate the density; defaults to a uniform grid
        spanning the sample range widened by 10 %.
    n_points:
        Number of grid points when ``evaluation_points`` is not given.
    """
    samples = _validate_samples(samples)
    if np.std(samples) == 0.0:
        raise ValueError("kernel density estimation requires non-degenerate samples")
    kde = stats.gaussian_kde(samples)
    if evaluation_points is None:
        low, high = samples.min(), samples.max()
        margin = 0.1 * (high - low)
        evaluation_points = np.linspace(low - margin, high + margin, n_points)
    evaluation_points = np.asarray(evaluation_points, dtype=float)
    return evaluation_points, kde(evaluation_points)


def gaussian_pdf(mean: float, std: float, evaluation_points
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Density of a Gaussian with the given moments (the statistical-LUT view)."""
    if std <= 0.0:
        raise ValueError("std must be positive")
    evaluation_points = np.asarray(evaluation_points, dtype=float)
    density = stats.norm.pdf(evaluation_points, loc=mean, scale=std)
    return evaluation_points, density


def normality_deviation(samples, n_points: int = 200) -> float:
    """Integrated absolute difference between the empirical and Gaussian PDFs.

    The value is the total-variation-style distance
    ``0.5 * integral |kde(x) - normal(x)| dx`` in ``[0, 1]``; 0 means the
    ensemble is indistinguishable from a Gaussian with the same moments.
    Used to quantify how non-Gaussian the low-Vdd delay distribution of
    Fig. 9 is, and how much of that the proposed flow captures.
    """
    samples = _validate_samples(samples)
    grid, kde_density = kde_pdf(samples, n_points=n_points)
    _, normal_density = gaussian_pdf(float(np.mean(samples)), float(np.std(samples)),
                                     grid)
    spacing = grid[1] - grid[0]
    return float(0.5 * np.sum(np.abs(kde_density - normal_density)) * spacing)
