"""Random-number-generation helpers.

All stochastic components of the library (process-variation sampling, Monte
Carlo characterization, Latin-hypercube designs) accept either an integer
seed, a :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalizes those inputs so results are reproducible whenever a seed is given.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Acceptable seed-like inputs throughout the library.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an integer seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Child streams are derived with :meth:`numpy.random.Generator.spawn` so the
    same parent seed always yields the same family of streams.

    Raises
    ------
    ValueError
        If ``count`` is negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    if count == 0:
        return []
    return list(parent.spawn(count))


def stable_seed_from_name(name: str, base_seed: Optional[int] = None) -> int:
    """Derive a deterministic 32-bit seed from a string label.

    Used so that, for example, each technology node or cell gets its own
    reproducible variation stream independent of iteration order.
    """
    accumulator = 0 if base_seed is None else int(base_seed) & 0xFFFFFFFF
    for char in name:
        accumulator = (accumulator * 1000003 + ord(char)) & 0xFFFFFFFF
    return accumulator
