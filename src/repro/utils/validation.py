"""Small argument-validation helpers shared across the library.

These raise ``ValueError`` with descriptive messages, keeping the calling code
compact and the error messages consistent.
"""

from __future__ import annotations

from typing import Iterable, Sized

import numpy as np


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    value = float(value)
    if strict and value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``low <= value <= high``."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_finite(name: str, value) -> np.ndarray:
    """Validate that all entries of ``value`` are finite; returns an array."""
    array = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def check_same_length(**named_sequences: Sized) -> int:
    """Validate that all provided sequences share one length; return it."""
    lengths = {name: len(seq) for name, seq in named_sequences.items()}
    unique = set(lengths.values())
    if len(unique) > 1:
        detail = ", ".join(f"{name}={length}" for name, length in lengths.items())
        raise ValueError(f"sequences must have equal length ({detail})")
    if not lengths:
        return 0
    return unique.pop()


def check_nonempty(name: str, values: Iterable) -> list:
    """Validate that an iterable has at least one element; return it as a list."""
    as_list = list(values)
    if not as_list:
        raise ValueError(f"{name} must not be empty")
    return as_list
