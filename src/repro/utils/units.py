"""Unit constants and conversion helpers.

All internal quantities in this library are expressed in SI base units:
seconds for time, volts for voltage, farads for capacitance, amperes for
current.  The helpers in this module exist so that user-facing code (examples,
benchmarks, Liberty export) can speak in the units customary for standard-cell
characterization -- picoseconds, femtofarads, millivolts -- without scattering
magic scale factors around.
"""

from __future__ import annotations

import math

#: SI prefixes as multipliers.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15

#: Base units (multipliers of themselves; used for readability).
SECOND = 1.0
VOLT = 1.0
FARAD = 1.0
AMPERE = 1.0

_PREFIXES = [
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]

_PREFIX_VALUES = {
    "P": 1e15,
    "T": 1e12,
    "G": 1e9,
    "M": 1e6,
    "k": 1e3,
    "": 1.0,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}


def picoseconds(value: float) -> float:
    """Convert a value given in picoseconds to seconds."""
    return value * PICO


def seconds(value: float) -> float:
    """Identity helper for readability: a value already in seconds."""
    return value


def femtofarads(value: float) -> float:
    """Convert a value given in femtofarads to farads."""
    return value * FEMTO


def farads(value: float) -> float:
    """Identity helper for readability: a value already in farads."""
    return value


def volts(value: float) -> float:
    """Identity helper for readability: a value already in volts."""
    return value


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering (SI-prefix) suffix.

    Parameters
    ----------
    value:
        Quantity in SI base units.
    unit:
        Unit symbol appended after the prefix (e.g. ``"s"``, ``"F"``).
    digits:
        Number of significant digits.

    Returns
    -------
    str
        Human-readable string such as ``"5.09ps"`` or ``"1.67fF"``.
    """
    if value == 0.0:
        return f"0{unit}"
    if not math.isfinite(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g}{prefix}{unit}"
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g}{prefix}{unit}"


def from_engineering(text: str) -> float:
    """Parse an engineering-formatted string back into a float in SI units.

    Accepts strings such as ``"5.09p"``, ``"1.67f"``, ``"0.7"`` or ``"3n"``.
    A trailing unit letter (``s``, ``F``, ``V``, ``A``) is ignored.

    Raises
    ------
    ValueError
        If the string cannot be parsed.
    """
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty string cannot be parsed as a quantity")
    # Drop a trailing unit symbol if present (but keep prefix letters).
    if stripped[-1] in "sFVAΩ" and len(stripped) > 1:
        stripped = stripped[:-1]
    prefix = ""
    if stripped and stripped[-1] in _PREFIX_VALUES and stripped[-1] not in "0123456789.":
        prefix = stripped[-1]
        stripped = stripped[:-1]
    try:
        base = float(stripped)
    except ValueError as exc:
        raise ValueError(f"cannot parse quantity from {text!r}") from exc
    return base * _PREFIX_VALUES[prefix]
