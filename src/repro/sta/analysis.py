"""Deterministic static timing analysis.

A classic block-based STA: gates are visited in topological order, each net's
arrival time and transition time are computed from its driver's delay/slew at
the actual capacitive load (sum of fanout input-pin capacitances plus any
external load), and the worst primary-output arrival together with its
critical path is reported.

Two engines produce identical reports (the test suite enforces agreement at
``rtol <= 1e-12``):

* ``engine="loop"`` -- the reference engine: one Python iteration and one
  timing-view query per gate.
* ``engine="batched"`` (default) -- the level-batched engine: the netlist is
  compiled once (:meth:`~repro.sta.netlist.Netlist.compile`), arrivals and
  slews live in flat per-net arrays, each topological level resolves its
  worst fanins with segmented ``np.maximum.reduceat`` reductions over the
  CSR fanin arrays, and one batched timing query is issued per (level, cell
  type) group.

Both engines read every net's capacitive load from one precomputed load
vector (external load plus summed fanout pin capacitances), so no fanout
list is walked during propagation.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.accounting import RunLedger
from repro.sta.netlist import CompiledNetlist, Netlist
from repro.sta.timing_view import TimingView

#: Propagation engines selectable on the analyzers.
ENGINES = ("batched", "loop")

#: Minimum load a gate output sees, even when dangling (farads).
MIN_LOAD_F = 1e-17


@dataclass(frozen=True)
class PathReport:
    """Result of a deterministic STA run.

    Attributes
    ----------
    arrival_times:
        Arrival time (seconds) of every net.
    transition_times:
        Transition time (seconds) of every net.
    critical_output:
        Primary output with the latest arrival.
    critical_delay:
        That latest arrival time, in seconds.
    critical_path:
        Gate instance names from inputs to the critical output.
    """

    arrival_times: Dict[str, float]
    transition_times: Dict[str, float]
    critical_output: str
    critical_delay: float
    critical_path: Tuple[str, ...]


def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def _net_load_vector(compiled: CompiledNetlist, view: TimingView) -> np.ndarray:
    """Per-net-index load vector from a view's input-pin capacitances."""
    return compiled.net_loads(view.input_capacitances())


class TimingGraphAnalyzer:
    """Shared state management of the STA and SSTA analyzers.

    Owns the compiled netlist, the per-net-index load vector and the
    engine switch; subclasses provide ``_run_loop`` / ``_run_batched``.
    An optional :class:`~repro.runtime.accounting.RunLedger` records each
    :meth:`run` as one stage (``"sta"`` / ``"ssta"``) with per-run cache
    activity and a ``gate_evaluations`` metric.
    """

    #: Ledger stage name of :meth:`run` (overridden per analyzer).
    _ledger_stage = "timing_graph"

    def __init__(self, netlist: Netlist, timing_view: TimingView,
                 primary_input_slew: float = 5e-12,
                 primary_input_arrival: float = 0.0,
                 engine: str = "batched",
                 ledger: Optional[RunLedger] = None):
        if primary_input_slew <= 0.0:
            raise ValueError("primary_input_slew must be positive")
        self._engine = _check_engine(engine)
        self._netlist = netlist
        self._view = timing_view
        self._input_slew = float(primary_input_slew)
        self._input_arrival = float(primary_input_arrival)
        self._ledger = ledger
        self._bind(netlist.compile())

    def _bind(self, compiled: CompiledNetlist) -> None:
        for cell in dict.fromkeys(compiled.gate_cells):
            if not self._view.has_cell(cell):
                raise KeyError(f"timing view does not cover cell {cell!r}")
        self._compiled = compiled
        self._net_index = {name: index for index, name
                           in enumerate(compiled.net_names)}
        self._loads = _net_load_vector(compiled, self._view)

    def _refresh(self) -> None:
        """Re-derive compiled state if the netlist mutated since construction.

        ``Netlist.compile()`` invalidates its cache on mutation, so this is
        one identity check in the common case and keeps the precomputed load
        vector (and the view-coverage check) live, matching the
        pre-compiled engines' behaviour.
        """
        compiled = self._netlist.compile()
        if compiled is not self._compiled:
            self._bind(compiled)

    def net_load(self, net: str) -> float:
        """Total capacitive load on a net, in farads (precomputed)."""
        self._refresh()
        if net not in self._net_index:
            raise KeyError(f"netlist {self._netlist.name!r} has no net {net!r}")
        return float(self._loads[self._net_index[net]])

    def run(self):
        """Propagate arrivals and slews and return the timing report."""
        self._refresh()
        ledger = self._ledger
        with (ledger.stage(self._ledger_stage) if ledger is not None
              else nullcontext()), \
             (ledger.caches() if ledger is not None else nullcontext()):
            if ledger is not None:
                ledger.add_metric("gate_evaluations", self._compiled.n_gates)
            if self._engine == "batched":
                return self._run_batched()
            return self._run_loop()


class StaticTimingAnalyzer(TimingGraphAnalyzer):
    """Topological STA over a :class:`Netlist` and a :class:`TimingView`."""

    _ledger_stage = "sta"

    def _run_loop(self) -> PathReport:
        arrivals: Dict[str, float] = {}
        slews: Dict[str, float] = {}
        worst_input_gate: Dict[str, Optional[str]] = {}
        net_index = self._net_index

        for net in self._netlist.primary_inputs:
            arrivals[net] = self._input_arrival
            slews[net] = self._input_slew
            worst_input_gate[net] = None

        for gate in self._netlist.topological_gates():
            input_arrival = max(arrivals[net] for net in gate.input_nets)
            worst_net = max(gate.input_nets, key=lambda net: arrivals[net])
            input_slew = slews[worst_net]
            load = max(float(self._loads[net_index[gate.output_net]]), MIN_LOAD_F)
            delay, output_slew = self._view.gate_timing(gate.cell_name, input_slew,
                                                        load)
            arrivals[gate.output_net] = input_arrival + delay
            slews[gate.output_net] = output_slew
            worst_input_gate[gate.output_net] = gate.name

        critical_output = max(self._netlist.primary_outputs,
                              key=lambda net: arrivals[net])
        critical_path = self._trace_path(critical_output, worst_input_gate, arrivals)
        return PathReport(
            arrival_times=arrivals,
            transition_times=slews,
            critical_output=critical_output,
            critical_delay=float(arrivals[critical_output]),
            critical_path=tuple(critical_path),
        )

    def _run_batched(self) -> PathReport:
        compiled = self._compiled
        arrival = np.full(compiled.n_nets, -np.inf)
        slew = np.zeros(compiled.n_nets)
        arrival[compiled.primary_input_nets] = self._input_arrival
        slew[compiled.primary_input_nets] = self._input_slew
        loads = np.maximum(self._loads, MIN_LOAD_F)
        # Index into fanin_nets of each gate's chosen worst input (for the
        # critical-path trace).
        worst_fanin = np.zeros(compiled.n_gates, dtype=np.int64)

        for level in range(compiled.n_levels):
            start = int(compiled.level_starts[level])
            stop = int(compiled.level_starts[level + 1])
            nets, worst, first = compiled.level_worst_fanins(level, arrival)
            worst_fanin[start:stop] = int(compiled.fanin_ptr[start]) + first
            input_slews = slew[nets[first]]
            out_nets = compiled.gate_output_net[start:stop]
            out_loads = loads[out_nets]
            for cell, local in compiled.level_groups[level]:
                delay, out_slew = self._view.gate_timing_many(
                    cell, input_slews[local], out_loads[local])
                arrival[out_nets[local]] = worst[local] + delay
                slew[out_nets[local]] = out_slew

        po_nets = compiled.primary_output_nets
        critical_index = int(po_nets[int(np.argmax(arrival[po_nets]))])
        critical_path: List[str] = []
        net = critical_index
        while compiled.driver_gate[net] >= 0:
            gate_index = int(compiled.driver_gate[net])
            critical_path.append(compiled.gate_names[gate_index])
            net = int(compiled.fanin_nets[worst_fanin[gate_index]])
        critical_path.reverse()

        names = compiled.net_names
        return PathReport(
            arrival_times={name: float(arrival[i]) for i, name in enumerate(names)},
            transition_times={name: float(slew[i]) for i, name in enumerate(names)},
            critical_output=names[critical_index],
            critical_delay=float(arrival[critical_index]),
            critical_path=tuple(critical_path),
        )

    def _trace_path(self, output_net: str,
                    worst_input_gate: Dict[str, Optional[str]],
                    arrivals: Dict[str, float]) -> List[str]:
        path: List[str] = []
        net = output_net
        while worst_input_gate.get(net) is not None:
            gate_name = worst_input_gate[net]
            path.append(gate_name)
            gate = self._netlist.gate(gate_name)
            net = max(gate.input_nets, key=lambda candidate: arrivals[candidate])
        path.reverse()
        return path
