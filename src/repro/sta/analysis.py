"""Deterministic static timing analysis.

A classic block-based STA: gates are visited in topological order, each net's
arrival time and transition time are computed from its driver's delay/slew at
the actual capacitive load (sum of fanout input-pin capacitances plus any
external load), and the worst primary-output arrival together with its
critical path is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sta.netlist import Gate, Netlist
from repro.sta.timing_view import TimingView


@dataclass(frozen=True)
class PathReport:
    """Result of a deterministic STA run.

    Attributes
    ----------
    arrival_times:
        Arrival time (seconds) of every net.
    transition_times:
        Transition time (seconds) of every net.
    critical_output:
        Primary output with the latest arrival.
    critical_delay:
        That latest arrival time, in seconds.
    critical_path:
        Gate instance names from inputs to the critical output.
    """

    arrival_times: Dict[str, float]
    transition_times: Dict[str, float]
    critical_output: str
    critical_delay: float
    critical_path: Tuple[str, ...]


class StaticTimingAnalyzer:
    """Topological STA over a :class:`Netlist` and a :class:`TimingView`."""

    def __init__(self, netlist: Netlist, timing_view: TimingView,
                 primary_input_slew: float = 5e-12,
                 primary_input_arrival: float = 0.0):
        if primary_input_slew <= 0.0:
            raise ValueError("primary_input_slew must be positive")
        netlist.validate()
        for gate in netlist.gates:
            if not timing_view.has_cell(gate.cell_name):
                raise KeyError(
                    f"timing view does not cover cell {gate.cell_name!r} "
                    f"(gate {gate.name})"
                )
        self._netlist = netlist
        self._view = timing_view
        self._input_slew = float(primary_input_slew)
        self._input_arrival = float(primary_input_arrival)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def net_load(self, net: str) -> float:
        """Total capacitive load on a net, in farads."""
        load = self._netlist.external_load(net)
        for consumer in self._netlist.fanout_gates(net):
            load += self._view.input_capacitance(consumer.cell_name)
        return load

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def run(self) -> PathReport:
        """Propagate arrivals and slews and return the timing report."""
        arrivals: Dict[str, float] = {}
        slews: Dict[str, float] = {}
        worst_input_gate: Dict[str, Optional[str]] = {}

        for net in self._netlist.primary_inputs:
            arrivals[net] = self._input_arrival
            slews[net] = self._input_slew
            worst_input_gate[net] = None

        for gate in self._netlist.topological_gates():
            input_arrival = max(arrivals[net] for net in gate.input_nets)
            worst_net = max(gate.input_nets, key=lambda net: arrivals[net])
            input_slew = slews[worst_net]
            load = self.net_load(gate.output_net)
            # A gate must see a non-zero load even on dangling outputs.
            load = max(load, 1e-17)
            delay, output_slew = self._view.gate_timing(gate.cell_name, input_slew,
                                                        load)
            arrivals[gate.output_net] = input_arrival + delay
            slews[gate.output_net] = output_slew
            worst_input_gate[gate.output_net] = gate.name

        critical_output = max(self._netlist.primary_outputs,
                              key=lambda net: arrivals[net])
        critical_path = self._trace_path(critical_output, worst_input_gate, arrivals)
        return PathReport(
            arrival_times=arrivals,
            transition_times=slews,
            critical_output=critical_output,
            critical_delay=float(arrivals[critical_output]),
            critical_path=tuple(critical_path),
        )

    def _trace_path(self, output_net: str,
                    worst_input_gate: Dict[str, Optional[str]],
                    arrivals: Dict[str, float]) -> List[str]:
        path: List[str] = []
        net = output_net
        while worst_input_gate.get(net) is not None:
            gate_name = worst_input_gate[net]
            path.append(gate_name)
            gate = self._netlist.gate(gate_name)
            net = max(gate.input_nets, key=lambda candidate: arrivals[candidate])
        path.reverse()
        return path
