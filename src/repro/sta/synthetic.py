"""Seeded synthetic-netlist generators for engine testing and benchmarking.

The hand-written benchmark circuits (:func:`~repro.sta.netlist.inverter_chain`,
:func:`~repro.sta.netlist.nand_nor_tree`, the C17 netlist) top out at a few
dozen gates; exercising the level-batched STA/SSTA engines at the scale the
ROADMAP targets needs netlists of thousands to tens of thousands of gates
with controllable shape.  Everything here is deterministic in its ``rng``
seed, so the batched-versus-loop equivalence suite can sweep a reproducible
grid of circuit topologies.

Three shapes are provided:

* :func:`synthetic_chain` -- a deep single-path delay line (worst case for
  level batching: every level holds one gate);
* :func:`synthetic_tree` -- a balanced reduction tree (fanout 1, width
  halving per level);
* :func:`random_layered_dag` -- the general case: ``depth`` layers of
  ``width`` gates whose fanins are drawn at random from the preceding
  ``window`` layers, with a configurable input-pin mix (which fixes the
  expected fanout at ``mean fanin``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sta.netlist import Gate, Netlist, inverter_chain, nand_nor_tree
from repro.utils.rng import RandomState, ensure_rng

#: Default cell mix: (cell name, number of input pins, draw weight).
DEFAULT_CELL_MIX: Tuple[Tuple[str, int, float], ...] = (
    ("INV_X1", 1, 1.0),
    ("NAND2_X1", 2, 1.0),
    ("NOR2_X1", 2, 1.0),
)


def synthetic_chain(depth: int, cell_name: str = "INV_X1",
                    load_f: float = 2e-15) -> Netlist:
    """A ``depth``-stage inverter chain (one gate per topological level)."""
    return inverter_chain(depth, cell_name=cell_name, load_f=load_f)


def synthetic_tree(n_leaves: int, load_f: float = 2e-15) -> Netlist:
    """A balanced NAND/NOR reduction tree over ``n_leaves`` inputs."""
    return nand_nor_tree(n_leaves, load_f=load_f)


def random_layered_dag(
    width: int,
    depth: int,
    window: int = 2,
    cells: Sequence[Tuple[str, int, float]] = DEFAULT_CELL_MIX,
    n_primary_inputs: Optional[int] = None,
    load_f: float = 2e-15,
    rng: RandomState = 0,
    name: Optional[str] = None,
) -> Netlist:
    """A random layered DAG of ``width x depth`` gates.

    Layer 0 is the primary inputs; each of the ``depth`` gate layers holds
    ``width`` gates whose cell type is drawn from ``cells`` (weighted) and
    whose input nets are drawn without replacement from the nets of the
    preceding ``window`` layers -- at least one from the immediately
    preceding layer, so every gate of layer ``l`` sits at topological level
    ``l`` and the levelized depth equals ``depth`` exactly.  Nets left
    unconsumed at the end become primary outputs carrying ``load_f``.

    Parameters
    ----------
    width:
        Gates per layer.
    depth:
        Number of gate layers (= topological levels).
    window:
        How many preceding layers fanins may reach back into (>= 1); larger
        windows produce higher-fanout, more DAG-like (less tree-like) nets.
    cells:
        The cell mix as ``(cell_name, n_input_pins, weight)`` triples.
    n_primary_inputs:
        Primary-input count (default ``width``).
    load_f:
        External load on every primary output, farads.
    rng:
        Seed or generator; the netlist is a pure function of it.
    name:
        Netlist name (default derived from the shape).
    """
    if width < 1 or depth < 1:
        raise ValueError("width and depth must both be at least 1")
    if window < 1:
        raise ValueError("window must be at least 1")
    if not cells:
        raise ValueError("the cell mix must not be empty")
    generator = ensure_rng(rng)
    n_inputs = int(n_primary_inputs) if n_primary_inputs is not None else width
    if n_inputs < max(pins for _, pins, _ in cells):
        raise ValueError("not enough primary inputs for the widest cell")

    cell_names = [cell for cell, _, _ in cells]
    cell_pins = np.array([pins for _, pins, _ in cells], dtype=np.int64)
    weights = np.array([weight for _, _, weight in cells], dtype=float)
    if np.any(weights < 0.0) or weights.sum() <= 0.0:
        raise ValueError("cell weights must be non-negative with a positive sum")
    weights = weights / weights.sum()

    primary_inputs = [f"pi{index}" for index in range(n_inputs)]
    netlist = Netlist(name or f"rand_dag_w{width}_d{depth}", primary_inputs, [])
    layers: List[List[str]] = [primary_inputs]
    consumed: Dict[str, bool] = {}

    for layer in range(1, depth + 1):
        recent = layers[max(0, layer - window):layer - 1]
        pool = [net for nets in recent for net in nets]
        previous = layers[layer - 1]
        choices = generator.choice(len(cells), size=width, p=weights)
        outputs: List[str] = []
        for position in range(width):
            cell_index = int(choices[position])
            pins = int(cell_pins[cell_index])
            # One pin always reads the previous layer (keeps the level depth
            # exact); remaining pins read anywhere in the window, draining
            # not-yet-consumed nets first so few internal nets dangle (real
            # netlists have few primary outputs relative to their gate count).
            first = previous[int(generator.integers(len(previous)))]
            fanin = [first]
            candidates = [net for net in previous + pool if net != first]
            fresh = [net for net in candidates if net not in consumed]
            stale = [net for net in candidates if net in consumed]
            extra = min(pins - 1, len(candidates))
            for source in (fresh, stale):
                take = min(extra - (len(fanin) - 1), len(source))
                if take > 0:
                    picks = generator.choice(len(source), size=take,
                                             replace=False)
                    fanin.extend(source[int(pick)] for pick in picks)
            while len(fanin) < pins:      # tiny nets: reuse the first pin's net
                fanin.append(first)
            output = f"n{layer}_{position}"
            netlist.add_gate(Gate(name=f"g{layer}_{position}",
                                  cell_name=cell_names[cell_index],
                                  input_nets=tuple(fanin), output_net=output))
            outputs.append(output)
            for net in fanin:
                consumed[net] = True
        layers.append(outputs)

    dangling = [net for nets in layers[1:] for net in nets
                if net not in consumed]
    for net in dangling:
        netlist.add_primary_output(net)
        netlist.set_output_load(net, load_f)
    netlist.validate()
    return netlist
