"""Gate-level netlists and benchmark circuit generators.

A netlist is a directed acyclic graph of gate instances connected by named
nets.  Every net has at most one driver (a gate output or a primary input);
combinational loops are rejected at construction time.  Three generators
provide the circuits used by the examples and tests: an inverter chain (the
classic ring-oscillator-style delay line), a balanced NAND/NOR reduction
tree, and the ISCAS-85 C17 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class Gate:
    """One gate instance.

    Attributes
    ----------
    name:
        Unique instance name.
    cell_name:
        Library cell implementing the gate (e.g. ``"NAND2_X1"``).
    input_nets:
        Nets driving the gate's input pins, in pin order.
    output_net:
        Net driven by the gate's output.
    """

    name: str
    cell_name: str
    input_nets: Tuple[str, ...]
    output_net: str

    def __post_init__(self) -> None:
        if not self.input_nets:
            raise ValueError(f"gate {self.name} needs at least one input net")
        if self.output_net in self.input_nets:
            raise ValueError(f"gate {self.name} drives one of its own inputs")


class Netlist:
    """A combinational gate-level netlist."""

    def __init__(self, name: str, primary_inputs: Sequence[str],
                 primary_outputs: Sequence[str],
                 output_loads_f: Optional[Dict[str, float]] = None):
        if not primary_inputs:
            raise ValueError("a netlist needs at least one primary input")
        self._name = name
        self._primary_inputs = list(dict.fromkeys(primary_inputs))
        self._primary_outputs = list(dict.fromkeys(primary_outputs))
        self._gates: Dict[str, Gate] = {}
        self._driver_of: Dict[str, str] = {}
        self._output_loads = dict(output_loads_f or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(self, gate: Gate) -> None:
        """Add a gate instance; net driver conflicts are rejected."""
        if gate.name in self._gates:
            raise ValueError(f"gate {gate.name!r} already exists")
        if gate.output_net in self._driver_of:
            raise ValueError(f"net {gate.output_net!r} already has a driver")
        if gate.output_net in self._primary_inputs:
            raise ValueError(f"net {gate.output_net!r} is a primary input")
        self._gates[gate.name] = gate
        self._driver_of[gate.output_net] = gate.name

    def set_output_load(self, net: str, capacitance_f: float) -> None:
        """Attach an external load capacitance to a net (typically a PO)."""
        if capacitance_f < 0.0:
            raise ValueError("load capacitance must be non-negative")
        self._output_loads[net] = float(capacitance_f)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Netlist name."""
        return self._name

    @property
    def primary_inputs(self) -> List[str]:
        """Primary input nets."""
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> List[str]:
        """Primary output nets."""
        return list(self._primary_outputs)

    @property
    def gates(self) -> List[Gate]:
        """All gate instances."""
        return list(self._gates.values())

    def gate(self, name: str) -> Gate:
        """Look up a gate by instance name."""
        if name not in self._gates:
            raise KeyError(f"netlist {self._name!r} has no gate {name!r}")
        return self._gates[name]

    def driver_of(self, net: str) -> Optional[Gate]:
        """The gate driving a net, or ``None`` for primary inputs."""
        gate_name = self._driver_of.get(net)
        return self._gates[gate_name] if gate_name is not None else None

    def fanout_gates(self, net: str) -> List[Gate]:
        """Gates whose inputs are connected to a net."""
        return [gate for gate in self._gates.values() if net in gate.input_nets]

    def external_load(self, net: str) -> float:
        """External load capacitance attached to a net (0 if none)."""
        return self._output_loads.get(net, 0.0)

    def nets(self) -> List[str]:
        """Every net in the design (inputs, internal, outputs)."""
        names = list(self._primary_inputs)
        for gate in self._gates.values():
            for net in (*gate.input_nets, gate.output_net):
                if net not in names:
                    names.append(net)
        return names

    # ------------------------------------------------------------------
    # Graph view
    # ------------------------------------------------------------------
    def gate_graph(self) -> nx.DiGraph:
        """Directed graph with gate names as nodes (edges follow nets)."""
        graph = nx.DiGraph()
        for gate in self._gates.values():
            graph.add_node(gate.name)
        for gate in self._gates.values():
            for consumer in self.fanout_gates(gate.output_net):
                graph.add_edge(gate.name, consumer.name)
        return graph

    def topological_gates(self) -> List[Gate]:
        """Gates in topological (input-to-output) order.

        Raises
        ------
        ValueError
            If the netlist contains a combinational loop.
        """
        graph = self.gate_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError(f"netlist {self._name!r} contains a combinational loop")
        return [self._gates[name] for name in nx.topological_sort(graph)]

    def validate(self) -> None:
        """Check that every gate input and primary output has a driver."""
        known = set(self._primary_inputs) | set(self._driver_of)
        for gate in self._gates.values():
            for net in gate.input_nets:
                if net not in known:
                    raise ValueError(f"net {net!r} (input of {gate.name}) has no driver")
        for net in self._primary_outputs:
            if net not in known:
                raise ValueError(f"primary output {net!r} has no driver")
        self.topological_gates()


# ----------------------------------------------------------------------
# Benchmark generators
# ----------------------------------------------------------------------
def inverter_chain(n_stages: int, cell_name: str = "INV_X1",
                   load_f: float = 2e-15) -> Netlist:
    """A chain of ``n_stages`` inverters from net ``in`` to net ``out``."""
    if n_stages < 1:
        raise ValueError("the chain needs at least one stage")
    netlist = Netlist("inv_chain", ["in"], ["out"])
    previous = "in"
    for stage in range(n_stages):
        output = "out" if stage == n_stages - 1 else f"n{stage + 1}"
        netlist.add_gate(Gate(name=f"u{stage + 1}", cell_name=cell_name,
                              input_nets=(previous,), output_net=output))
        previous = output
    netlist.set_output_load("out", load_f)
    netlist.validate()
    return netlist


def nand_nor_tree(n_leaves: int = 8, load_f: float = 2e-15) -> Netlist:
    """A balanced reduction tree alternating NAND2 and NOR2 levels."""
    if n_leaves < 2 or (n_leaves & (n_leaves - 1)) != 0:
        raise ValueError("n_leaves must be a power of two and at least 2")
    inputs = [f"in{i}" for i in range(n_leaves)]
    netlist = Netlist("nand_nor_tree", inputs, ["out"])
    level_nets = list(inputs)
    level = 0
    gate_index = 0
    while len(level_nets) > 1:
        cell = "NAND2_X1" if level % 2 == 0 else "NOR2_X1"
        next_nets = []
        for pair_start in range(0, len(level_nets), 2):
            gate_index += 1
            is_root = len(level_nets) == 2
            output = "out" if is_root else f"t{level}_{pair_start // 2}"
            netlist.add_gate(Gate(name=f"g{gate_index}", cell_name=cell,
                                  input_nets=(level_nets[pair_start],
                                              level_nets[pair_start + 1]),
                                  output_net=output))
            next_nets.append(output)
        level_nets = next_nets
        level += 1
    netlist.set_output_load("out", load_f)
    netlist.validate()
    return netlist


def c17_benchmark(load_f: float = 2e-15) -> Netlist:
    """The ISCAS-85 C17 benchmark (six NAND2 gates, five inputs, two outputs)."""
    netlist = Netlist("c17", ["N1", "N2", "N3", "N6", "N7"], ["N22", "N23"])
    connections = [
        ("g10", ("N1", "N3"), "N10"),
        ("g11", ("N3", "N6"), "N11"),
        ("g16", ("N2", "N11"), "N16"),
        ("g19", ("N11", "N7"), "N19"),
        ("g22", ("N10", "N16"), "N22"),
        ("g23", ("N16", "N19"), "N23"),
    ]
    for name, inputs, output in connections:
        netlist.add_gate(Gate(name=name, cell_name="NAND2_X1",
                              input_nets=inputs, output_net=output))
    netlist.set_output_load("N22", load_f)
    netlist.set_output_load("N23", load_f)
    netlist.validate()
    return netlist
