"""Gate-level netlists, their compiled form, and benchmark circuit generators.

A netlist is a directed acyclic graph of gate instances connected by named
nets.  Every net has at most one driver (a gate output or a primary input);
combinational loops are rejected at construction time.  Three generators
provide the circuits used by the examples and tests: an inverter chain (the
classic ring-oscillator-style delay line), a balanced NAND/NOR reduction
tree, and the ISCAS-85 C17 benchmark.

:class:`CompiledNetlist` is the array form the batched STA/SSTA engines run
on: nets and gates are integer-indexed, the DAG is levelized (gates stored
level-major so each level is a contiguous slice), gate fanins are a CSR
index array, and every net's capacitive load reduces to one scatter-add over
the fanin pins.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.runtime import register_runtime_cache
from repro.runtime.cache import LruCache

#: Compiled netlists, keyed by ``(netlist token, mutation epoch)`` in the
#: runtime-registered ``"netlist_compile"`` LRU.  Repeated analyzer
#: constructions over an unchanged netlist hit; every mutator bumps the
#: epoch, so stale compilations age out instead of lingering per instance.
_COMPILE_CACHE = register_runtime_cache(
    LruCache("netlist_compile", max_entries=32, max_bytes=512 * 2**20))

#: Distinct per-instance tokens (never reused, unlike ``id()``).
_NETLIST_TOKENS = itertools.count()


@dataclass(frozen=True)
class Gate:
    """One gate instance.

    Attributes
    ----------
    name:
        Unique instance name.
    cell_name:
        Library cell implementing the gate (e.g. ``"NAND2_X1"``).
    input_nets:
        Nets driving the gate's input pins, in pin order.
    output_net:
        Net driven by the gate's output.
    """

    name: str
    cell_name: str
    input_nets: Tuple[str, ...]
    output_net: str

    def __post_init__(self) -> None:
        if not self.input_nets:
            raise ValueError(f"gate {self.name} needs at least one input net")
        if self.output_net in self.input_nets:
            raise ValueError(f"gate {self.name} drives one of its own inputs")


class Netlist:
    """A combinational gate-level netlist."""

    def __init__(self, name: str, primary_inputs: Sequence[str],
                 primary_outputs: Sequence[str],
                 output_loads_f: Optional[Dict[str, float]] = None):
        if not primary_inputs:
            raise ValueError("a netlist needs at least one primary input")
        self._name = name
        self._primary_inputs = list(dict.fromkeys(primary_inputs))
        self._primary_outputs = list(dict.fromkeys(primary_outputs))
        self._gates: Dict[str, Gate] = {}
        self._driver_of: Dict[str, str] = {}
        self._consumers: Dict[str, List[str]] = {}
        self._output_loads = dict(output_loads_f or {})
        self._token = next(_NETLIST_TOKENS)
        self._epoch = 0

    def __getstate__(self):
        # The compile-cache token is process-local: a pickled copy landing in
        # another process must not collide with tokens that process's own
        # counter already handed out, so it is reissued on unpickling.
        state = self.__dict__.copy()
        del state["_token"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._token = next(_NETLIST_TOKENS)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(self, gate: Gate) -> None:
        """Add a gate instance; net driver conflicts are rejected."""
        if gate.name in self._gates:
            raise ValueError(f"gate {gate.name!r} already exists")
        if gate.output_net in self._driver_of:
            raise ValueError(f"net {gate.output_net!r} already has a driver")
        if gate.output_net in self._primary_inputs:
            raise ValueError(f"net {gate.output_net!r} is a primary input")
        self._gates[gate.name] = gate
        self._driver_of[gate.output_net] = gate.name
        for net in dict.fromkeys(gate.input_nets):
            self._consumers.setdefault(net, []).append(gate.name)
        self._epoch += 1

    def set_output_load(self, net: str, capacitance_f: float) -> None:
        """Attach an external load capacitance to a net (typically a PO)."""
        if capacitance_f < 0.0:
            raise ValueError("load capacitance must be non-negative")
        self._output_loads[net] = float(capacitance_f)
        self._epoch += 1

    def add_primary_output(self, net: str) -> None:
        """Declare an existing net a primary output (idempotent)."""
        if net not in self._primary_outputs:
            self._primary_outputs.append(net)
            self._epoch += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Netlist name."""
        return self._name

    @property
    def primary_inputs(self) -> List[str]:
        """Primary input nets."""
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> List[str]:
        """Primary output nets."""
        return list(self._primary_outputs)

    @property
    def gates(self) -> List[Gate]:
        """All gate instances."""
        return list(self._gates.values())

    def gate(self, name: str) -> Gate:
        """Look up a gate by instance name."""
        if name not in self._gates:
            raise KeyError(f"netlist {self._name!r} has no gate {name!r}")
        return self._gates[name]

    def driver_of(self, net: str) -> Optional[Gate]:
        """The gate driving a net, or ``None`` for primary inputs."""
        gate_name = self._driver_of.get(net)
        return self._gates[gate_name] if gate_name is not None else None

    def fanout_gates(self, net: str) -> List[Gate]:
        """Gates whose inputs are connected to a net."""
        return [self._gates[name] for name in self._consumers.get(net, ())]

    def external_load(self, net: str) -> float:
        """External load capacitance attached to a net (0 if none)."""
        return self._output_loads.get(net, 0.0)

    def nets(self) -> List[str]:
        """Every net in the design (inputs, internal, outputs)."""
        names = dict.fromkeys(self._primary_inputs)
        for gate in self._gates.values():
            for net in (*gate.input_nets, gate.output_net):
                names.setdefault(net)
        return list(names)

    # ------------------------------------------------------------------
    # Graph view
    # ------------------------------------------------------------------
    def gate_graph(self) -> nx.DiGraph:
        """Directed graph with gate names as nodes (edges follow nets)."""
        graph = nx.DiGraph()
        for gate in self._gates.values():
            graph.add_node(gate.name)
        for gate in self._gates.values():
            for consumer in self.fanout_gates(gate.output_net):
                graph.add_edge(gate.name, consumer.name)
        return graph

    def topological_gates(self) -> List[Gate]:
        """Gates in topological (input-to-output) order.

        Raises
        ------
        ValueError
            If the netlist contains a combinational loop.
        """
        graph = self.gate_graph()
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError(f"netlist {self._name!r} contains a combinational loop")
        return [self._gates[name] for name in nx.topological_sort(graph)]

    def validate(self) -> None:
        """Check that every gate input and primary output has a driver."""
        known = set(self._primary_inputs) | set(self._driver_of)
        for gate in self._gates.values():
            for net in gate.input_nets:
                if net not in known:
                    raise ValueError(f"net {net!r} (input of {gate.name}) has no driver")
        for net in self._primary_outputs:
            if net not in known:
                raise ValueError(f"primary output {net!r} has no driver")
        self.topological_gates()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledNetlist":
        """The integer-indexed, levelized form used by the batched engines.

        Compilations live in the runtime-registered ``"netlist_compile"``
        LRU, keyed by this instance plus its mutation epoch: every mutator
        (:meth:`add_gate`, :meth:`set_output_load`,
        :meth:`add_primary_output`) bumps the epoch, so repeated analyzer
        constructions over an unchanged netlist share one
        :class:`CompiledNetlist` object (identity-stable while cached,
        which is what the analyzers' refresh check relies on), and total
        compile memory is bounded across all netlists.
        """
        key = (self._token, self._epoch)
        compiled = _COMPILE_CACHE.get(key)
        if compiled is None:
            compiled = compile_netlist(self)
            _COMPILE_CACHE.put(key, compiled)
        return compiled


@dataclass(frozen=True)
class CompiledNetlist:
    """Array view of a :class:`Netlist` for level-batched timing engines.

    Gates are stored **level-major**: gates of topological level 1 first
    (those fed only by primary inputs), then level 2, and so on, preserving
    insertion order within a level.  All per-gate arrays use this compiled
    order; ``level_starts`` delimits the levels, so each level is one
    contiguous slice of every array.

    Attributes
    ----------
    netlist:
        The source netlist (kept for name lookups and report building).
    net_names:
        Net name per net index (primary inputs first, then gate outputs in
        insertion order).
    gate_names, gate_cells:
        Instance and cell name per compiled gate index.
    gate_output_net:
        Net index driven by each gate.
    gate_level:
        Topological level of each gate (primary-input nets are level 0).
    fanin_nets, fanin_ptr:
        CSR fanin structure: gate ``g`` reads nets
        ``fanin_nets[fanin_ptr[g]:fanin_ptr[g + 1]]``, in pin order.
    level_starts:
        Compiled-gate index where each level begins, length ``n_levels + 1``.
    level_groups:
        Per level, ``(cell_name, local_gate_indices)`` pairs grouping the
        level's gates by cell type -- ``local_gate_indices`` index into the
        level's slice.  One batched timing query is issued per pair.
    driver_gate:
        Driving gate per net index (-1 for primary inputs).
    external_loads:
        External load capacitance per net index, farads.
    load_nets, load_pin_gate:
        Flattened (net, consumer gate) pin pairs for load accumulation,
        de-duplicated per gate (a gate tying one net to several of its pins
        presents its pin capacitance once, matching the loop engines).
    primary_input_nets, primary_output_nets:
        Net indices of the primary inputs / outputs, in declaration order.
    """

    netlist: Netlist
    net_names: Tuple[str, ...]
    gate_names: Tuple[str, ...]
    gate_cells: Tuple[str, ...]
    gate_output_net: np.ndarray
    gate_level: np.ndarray
    fanin_nets: np.ndarray
    fanin_ptr: np.ndarray
    level_starts: np.ndarray
    level_groups: Tuple[Tuple[Tuple[str, np.ndarray], ...], ...]
    driver_gate: np.ndarray
    external_loads: np.ndarray
    load_nets: np.ndarray
    load_pin_gate: np.ndarray
    primary_input_nets: np.ndarray
    primary_output_nets: np.ndarray

    @property
    def n_nets(self) -> int:
        """Number of nets."""
        return len(self.net_names)

    @property
    def n_gates(self) -> int:
        """Number of gates."""
        return len(self.gate_names)

    @property
    def n_levels(self) -> int:
        """Number of topological levels (excluding the primary-input level 0)."""
        return len(self.level_starts) - 1

    def level_worst_fanins(self, level: int, arrival: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Segment-reduce each gate's fanin arrivals over one level.

        ``arrival`` is indexed by net -- shape ``(n_nets,)`` for
        deterministic STA or ``(n_nets, n_seeds)`` for SSTA.  Returns
        ``(nets, worst, first)``: the level's concatenated fanin net
        indices, the worst (latest) arrival per gate, and the local index
        into ``nets`` of the first pin attaining it (matching Python
        ``max`` / ``np.argmax`` tie-breaking, seed-wise in the 2-D case).
        """
        start = int(self.level_starts[level])
        stop = int(self.level_starts[level + 1])
        fanin_lo = int(self.fanin_ptr[start])
        fanin_hi = int(self.fanin_ptr[stop])
        nets = self.fanin_nets[fanin_lo:fanin_hi]
        pointers = self.fanin_ptr[start:stop] - fanin_lo
        values = arrival[nets]
        worst = np.maximum.reduceat(values, pointers, axis=0)
        counts = np.diff(np.append(pointers, nets.size))
        index = np.arange(nets.size).reshape((-1,) + (1,) * (values.ndim - 1))
        candidates = np.where(values == np.repeat(worst, counts, axis=0),
                              index, nets.size)
        first = np.minimum.reduceat(candidates, pointers, axis=0)
        # A NaN arrival matches nothing (NaN != NaN), leaving the sentinel;
        # clamp so the gather stays in bounds and the NaN propagates to the
        # gate's arrival exactly as in the loop engines.
        first = np.minimum(first, nets.size - 1)
        return nets, worst, first

    def net_loads(self, input_caps_f: Mapping[str, float]) -> np.ndarray:
        """Total capacitive load per net index, in farads.

        ``input_caps_f`` maps cell name to input-pin capacitance.  The load
        of a net is its external load plus one pin capacitance per consumer
        gate connected to it -- computed for every net in one scatter-add
        instead of the per-net fanout walk of the naive engines.
        """
        pin_caps = np.array([float(input_caps_f[self.gate_cells[g]])
                             for g in self.load_pin_gate])
        loads = self.external_loads.copy()
        np.add.at(loads, self.load_nets, pin_caps)
        return loads


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Build the :class:`CompiledNetlist` array view of a netlist.

    Levelizes with Kahn's algorithm (detecting combinational loops and
    driverless nets along the way), orders gates level-major, and prepares
    the CSR fanin plus load-accumulation index arrays.
    """
    gates = netlist.gates
    pis = netlist.primary_inputs

    net_index: Dict[str, int] = {}
    for net in pis:
        net_index[net] = len(net_index)
    for gate in gates:
        net_index[gate.output_net] = len(net_index)
    for gate in gates:
        for net in gate.input_nets:
            if net not in net_index:
                raise ValueError(
                    f"net {net!r} (input of {gate.name}) has no driver")
    for net in netlist.primary_outputs:
        if net not in net_index:
            raise ValueError(f"primary output {net!r} has no driver")

    # Kahn levelization over gates: a gate's level is one more than the
    # worst level of its fanin nets; primary-input nets sit at level 0.
    gate_pos = {gate.name: index for index, gate in enumerate(gates)}
    driver_names = [netlist._driver_of.get(name) for name in net_index]
    driver_pos = [gate_pos[name] if name is not None else -1
                  for name in driver_names]
    net_of_gate = [net_index[gate.output_net] for gate in gates]
    indegree = np.zeros(len(gates), dtype=np.int64)
    consumer_lists: List[List[int]] = [[] for _ in gates]
    for position, gate in enumerate(gates):
        for net in gate.input_nets:
            driver = driver_pos[net_index[net]]
            if driver >= 0:
                indegree[position] += 1
                consumer_lists[driver].append(position)

    gate_level = np.zeros(len(gates), dtype=np.int64)
    ready = [position for position in range(len(gates)) if indegree[position] == 0]
    net_level = np.zeros(len(net_index), dtype=np.int64)
    processed = 0
    order: List[int] = []
    while ready:
        next_ready: List[int] = []
        for position in ready:
            gate = gates[position]
            level = 1 + max(net_level[net_index[net]] for net in gate.input_nets)
            gate_level[position] = level
            net_level[net_of_gate[position]] = level
            order.append(position)
            processed += 1
            for consumer in consumer_lists[position]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    next_ready.append(consumer)
        ready = next_ready
    if processed != len(gates):
        raise ValueError(f"netlist {netlist.name!r} contains a combinational loop")

    # Level-major compiled order, insertion order within a level.
    compiled_order = sorted(range(len(gates)),
                            key=lambda position: (gate_level[position], position))
    gate_names: List[str] = []
    gate_cells: List[str] = []
    output_net = np.empty(len(gates), dtype=np.int64)
    fanin_nets: List[int] = []
    fanin_ptr = np.zeros(len(gates) + 1, dtype=np.int64)
    load_nets: List[int] = []
    load_pin_gate: List[int] = []
    compiled_level = np.empty(len(gates), dtype=np.int64)
    for compiled_index, position in enumerate(compiled_order):
        gate = gates[position]
        gate_names.append(gate.name)
        gate_cells.append(gate.cell_name)
        output_net[compiled_index] = net_index[gate.output_net]
        compiled_level[compiled_index] = gate_level[position]
        fanin_nets.extend(net_index[net] for net in gate.input_nets)
        fanin_ptr[compiled_index + 1] = len(fanin_nets)
        for net in dict.fromkeys(gate.input_nets):
            load_nets.append(net_index[net])
            load_pin_gate.append(compiled_index)

    n_levels = int(compiled_level[-1]) if len(gates) else 0
    level_starts = np.searchsorted(compiled_level, np.arange(1, n_levels + 1))
    level_starts = np.append(level_starts, len(gates)).astype(np.int64)

    level_groups: List[Tuple[Tuple[str, np.ndarray], ...]] = []
    for level in range(n_levels):
        start, stop = int(level_starts[level]), int(level_starts[level + 1])
        by_cell: Dict[str, List[int]] = {}
        for local, compiled_index in enumerate(range(start, stop)):
            by_cell.setdefault(gate_cells[compiled_index], []).append(local)
        level_groups.append(tuple(
            (cell, np.asarray(indices, dtype=np.int64))
            for cell, indices in by_cell.items()))

    driver_gate = np.full(len(net_index), -1, dtype=np.int64)
    driver_gate[output_net] = np.arange(len(gates))
    external_loads = np.zeros(len(net_index))
    for net, capacitance in netlist._output_loads.items():
        if net in net_index:
            external_loads[net_index[net]] = capacitance

    return CompiledNetlist(
        netlist=netlist,
        net_names=tuple(net_index),
        gate_names=tuple(gate_names),
        gate_cells=tuple(gate_cells),
        gate_output_net=output_net,
        gate_level=compiled_level,
        fanin_nets=np.asarray(fanin_nets, dtype=np.int64),
        fanin_ptr=fanin_ptr,
        level_starts=level_starts,
        level_groups=tuple(level_groups),
        driver_gate=driver_gate,
        external_loads=external_loads,
        load_nets=np.asarray(load_nets, dtype=np.int64),
        load_pin_gate=np.asarray(load_pin_gate, dtype=np.int64),
        primary_input_nets=np.asarray([net_index[net] for net in pis],
                                      dtype=np.int64),
        primary_output_nets=np.asarray(
            [net_index[net] for net in netlist.primary_outputs], dtype=np.int64),
    )


# ----------------------------------------------------------------------
# Benchmark generators
# ----------------------------------------------------------------------
def inverter_chain(n_stages: int, cell_name: str = "INV_X1",
                   load_f: float = 2e-15) -> Netlist:
    """A chain of ``n_stages`` inverters from net ``in`` to net ``out``."""
    if n_stages < 1:
        raise ValueError("the chain needs at least one stage")
    netlist = Netlist("inv_chain", ["in"], ["out"])
    previous = "in"
    for stage in range(n_stages):
        output = "out" if stage == n_stages - 1 else f"n{stage + 1}"
        netlist.add_gate(Gate(name=f"u{stage + 1}", cell_name=cell_name,
                              input_nets=(previous,), output_net=output))
        previous = output
    netlist.set_output_load("out", load_f)
    netlist.validate()
    return netlist


def nand_nor_tree(n_leaves: int = 8, load_f: float = 2e-15) -> Netlist:
    """A balanced reduction tree alternating NAND2 and NOR2 levels."""
    if n_leaves < 2 or (n_leaves & (n_leaves - 1)) != 0:
        raise ValueError("n_leaves must be a power of two and at least 2")
    inputs = [f"in{i}" for i in range(n_leaves)]
    netlist = Netlist("nand_nor_tree", inputs, ["out"])
    level_nets = list(inputs)
    level = 0
    gate_index = 0
    while len(level_nets) > 1:
        cell = "NAND2_X1" if level % 2 == 0 else "NOR2_X1"
        next_nets = []
        for pair_start in range(0, len(level_nets), 2):
            gate_index += 1
            is_root = len(level_nets) == 2
            output = "out" if is_root else f"t{level}_{pair_start // 2}"
            netlist.add_gate(Gate(name=f"g{gate_index}", cell_name=cell,
                                  input_nets=(level_nets[pair_start],
                                              level_nets[pair_start + 1]),
                                  output_net=output))
            next_nets.append(output)
        level_nets = next_nets
        level += 1
    netlist.set_output_load("out", load_f)
    netlist.validate()
    return netlist


def c17_benchmark(load_f: float = 2e-15) -> Netlist:
    """The ISCAS-85 C17 benchmark (six NAND2 gates, five inputs, two outputs)."""
    netlist = Netlist("c17", ["N1", "N2", "N3", "N6", "N7"], ["N22", "N23"])
    connections = [
        ("g10", ("N1", "N3"), "N10"),
        ("g11", ("N3", "N6"), "N11"),
        ("g16", ("N2", "N11"), "N16"),
        ("g19", ("N11", "N7"), "N19"),
        ("g22", ("N10", "N16"), "N22"),
        ("g23", ("N16", "N19"), "N23"),
    ]
    for name, inputs, output in connections:
        netlist.add_gate(Gate(name=name, cell_name="NAND2_X1",
                              input_nets=inputs, output_net=output))
    netlist.set_output_load("N22", load_f)
    netlist.set_output_load("N23", load_f)
    netlist.validate()
    return netlist
