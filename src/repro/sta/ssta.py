"""Monte Carlo statistical static timing analysis (SSTA).

The statistical analogue of :mod:`repro.sta.analysis`: arrival times are
vectors over the Monte Carlo process seeds carried by a
:class:`~repro.sta.timing_view.StatisticalTimingView`, maxima are taken
seed-wise, and the result is the full distribution of the critical-path
delay -- mean, sigma, and the high quantiles that statistical sign-off uses.
This is the downstream consumer the paper's statistical library
characterization exists to serve.

As in the deterministic analyzer, two engines produce identical reports:

* ``engine="loop"`` -- one Python iteration and one per-seed timing query
  per gate.
* ``engine="batched"`` (default) -- arrivals live in one
  ``(n_nets, n_seeds)`` array, every topological level resolves its
  seed-wise worst fanins with segmented reductions over the compiled CSR
  fanin arrays, and one batched ``(gates x seeds)`` timing query is issued
  per (level, cell type) group.

Both engines select each gate's driving slew **per seed** from that seed's
worst (latest-arriving) input -- not from one globally worst input -- and
both accept a ``primary_input_arrival``, mirroring the deterministic
analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.distributions import DistributionSummary, summarize_many
from repro.runtime.accounting import RunLedger
from repro.sta.analysis import MIN_LOAD_F, TimingGraphAnalyzer
from repro.sta.netlist import Netlist
from repro.sta.timing_view import StatisticalTimingView


@dataclass(frozen=True)
class SstaReport:
    """Result of a Monte Carlo SSTA run.

    Attributes
    ----------
    critical_output:
        Primary output with the largest mean arrival time.
    delay_samples:
        Per-seed critical delays of that output, in seconds.
    summary:
        Moments and quantiles of the critical-delay distribution.
    output_summaries:
        Distribution summary per primary output.
    criticality:
        Per primary output, the fraction of seeds for which that output has
        the latest arrival -- the Monte Carlo criticality probability that
        statistical sign-off ranks endpoints by.
    """

    critical_output: str
    delay_samples: np.ndarray
    summary: DistributionSummary
    output_summaries: Dict[str, DistributionSummary]
    criticality: Dict[str, float]


def _criticality(names, samples: np.ndarray) -> Dict[str, float]:
    """Fraction of seeds each output is the (first) latest arrival."""
    winners = np.argmax(samples, axis=0)
    n_seeds = samples.shape[1]
    return {name: float(np.count_nonzero(winners == index) / n_seeds)
            for index, name in enumerate(names)}


class MonteCarloSsta(TimingGraphAnalyzer):
    """Seed-vectorized SSTA over a :class:`StatisticalTimingView`.

    Construction, engine selection, net-load precomputation and
    post-mutation refresh are shared with the deterministic analyzer
    (:class:`~repro.sta.analysis.TimingGraphAnalyzer`); :meth:`run` returns
    an :class:`SstaReport` with the critical-delay distribution.
    """

    _ledger_stage = "ssta"

    def __init__(self, netlist: Netlist, timing_view: StatisticalTimingView,
                 primary_input_slew: float = 5e-12,
                 primary_input_arrival: float = 0.0,
                 engine: str = "batched",
                 ledger: Optional[RunLedger] = None):
        super().__init__(netlist, timing_view,
                         primary_input_slew=primary_input_slew,
                         primary_input_arrival=primary_input_arrival,
                         engine=engine, ledger=ledger)

    def _report(self, po_names, po_samples: np.ndarray) -> SstaReport:
        output_summaries = dict(zip(po_names, summarize_many(po_samples)))
        critical_output = max(output_summaries,
                              key=lambda net: output_summaries[net].mean)
        critical_index = list(po_names).index(critical_output)
        return SstaReport(
            critical_output=critical_output,
            delay_samples=po_samples[critical_index].copy(),
            summary=output_summaries[critical_output],
            output_summaries=output_summaries,
            criticality=_criticality(po_names, po_samples),
        )

    def _run_loop(self) -> SstaReport:
        n_seeds = self._view.n_seeds
        seed_index = np.arange(n_seeds)
        net_index = self._net_index
        arrivals: Dict[str, np.ndarray] = {}
        slews: Dict[str, np.ndarray] = {}

        for net in self._netlist.primary_inputs:
            arrivals[net] = np.full(n_seeds, self._input_arrival)
            slews[net] = np.full(n_seeds, self._input_slew)

        for gate in self._netlist.topological_gates():
            stacked = np.stack([arrivals[net] for net in gate.input_nets], axis=0)
            input_arrival = stacked.max(axis=0)
            # Seed-wise worst input; each seed's driving slew comes from that
            # seed's own latest-arriving input (collapsed to the ensemble
            # mean inside the view's table query).
            worst_input = np.argmax(stacked, axis=0)
            slew_stack = np.stack([slews[net] for net in gate.input_nets], axis=0)
            input_slew = slew_stack[worst_input, seed_index]
            load = max(float(self._loads[net_index[gate.output_net]]), MIN_LOAD_F)
            delay, output_slew = self._view.gate_timing_samples(
                gate.cell_name, input_slew, load)
            arrivals[gate.output_net] = input_arrival + delay
            slews[gate.output_net] = output_slew

        po_names = self._netlist.primary_outputs
        po_samples = np.stack([arrivals[net] for net in po_names], axis=0)
        return self._report(po_names, po_samples)

    def _run_batched(self) -> SstaReport:
        compiled = self._compiled
        n_seeds = self._view.n_seeds
        seed_index = np.arange(n_seeds)
        arrival = np.full((compiled.n_nets, n_seeds), -np.inf)
        slew = np.zeros((compiled.n_nets, n_seeds))
        arrival[compiled.primary_input_nets] = self._input_arrival
        slew[compiled.primary_input_nets] = self._input_slew
        loads = np.maximum(self._loads, MIN_LOAD_F)

        for level in range(compiled.n_levels):
            start = int(compiled.level_starts[level])
            stop = int(compiled.level_starts[level + 1])
            # worst: (G, S) seed-wise latest fanin arrival; first: (G, S)
            # seed-wise first pin attaining it (np.argmax tie-breaking).
            nets, worst, first = compiled.level_worst_fanins(level, arrival)
            drive_net = nets[first]                                # (G, S)
            input_slews = slew[drive_net, seed_index[np.newaxis, :]]
            out_nets = compiled.gate_output_net[start:stop]
            out_loads = loads[out_nets]
            for cell, local in compiled.level_groups[level]:
                delay, out_slew = self._view.gate_timing_samples_many(
                    cell, input_slews[local], out_loads[local])
                arrival[out_nets[local]] = worst[local] + delay
                slew[out_nets[local]] = out_slew

        po_names = [compiled.net_names[index]
                    for index in compiled.primary_output_nets]
        po_samples = arrival[compiled.primary_output_nets]
        return self._report(po_names, po_samples)
