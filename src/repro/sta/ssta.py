"""Monte Carlo statistical static timing analysis (SSTA).

The statistical analogue of :mod:`repro.sta.analysis`: arrival times are
vectors over the Monte Carlo process seeds carried by a
:class:`~repro.sta.timing_view.StatisticalTimingView`, maxima are taken
seed-wise, and the result is the full distribution of the critical-path
delay -- mean, sigma, and the high quantiles that statistical sign-off uses.
This is the downstream consumer the paper's statistical library
characterization exists to serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.distributions import DistributionSummary, summarize
from repro.sta.netlist import Netlist
from repro.sta.timing_view import StatisticalTimingView


@dataclass(frozen=True)
class SstaReport:
    """Result of a Monte Carlo SSTA run.

    Attributes
    ----------
    critical_output:
        Primary output with the largest mean arrival time.
    delay_samples:
        Per-seed critical delays of that output, in seconds.
    summary:
        Moments and quantiles of the critical-delay distribution.
    output_summaries:
        Distribution summary per primary output.
    """

    critical_output: str
    delay_samples: np.ndarray
    summary: DistributionSummary
    output_summaries: Dict[str, DistributionSummary]


class MonteCarloSsta:
    """Seed-vectorized SSTA over a :class:`StatisticalTimingView`."""

    def __init__(self, netlist: Netlist, timing_view: StatisticalTimingView,
                 primary_input_slew: float = 5e-12):
        if primary_input_slew <= 0.0:
            raise ValueError("primary_input_slew must be positive")
        netlist.validate()
        for gate in netlist.gates:
            if not timing_view.has_cell(gate.cell_name):
                raise KeyError(
                    f"timing view does not cover cell {gate.cell_name!r} "
                    f"(gate {gate.name})"
                )
        self._netlist = netlist
        self._view = timing_view
        self._input_slew = float(primary_input_slew)

    def net_load(self, net: str) -> float:
        """Total capacitive load on a net, in farads."""
        load = self._netlist.external_load(net)
        for consumer in self._netlist.fanout_gates(net):
            load += self._view.input_capacitance(consumer.cell_name)
        return load

    def run(self) -> SstaReport:
        """Propagate per-seed arrivals and return the critical-delay distribution."""
        n_seeds = self._view.n_seeds
        arrivals: Dict[str, np.ndarray] = {}
        slews: Dict[str, np.ndarray] = {}

        for net in self._netlist.primary_inputs:
            arrivals[net] = np.zeros(n_seeds)
            slews[net] = np.full(n_seeds, self._input_slew)

        for gate in self._netlist.topological_gates():
            stacked = np.stack([arrivals[net] for net in gate.input_nets], axis=0)
            input_arrival = stacked.max(axis=0)
            # Seed-wise worst input; its slew drives the gate (collapsed to a
            # representative scalar inside the view).
            worst_index = int(np.argmax(stacked.mean(axis=1)))
            input_slew = slews[gate.input_nets[worst_index]]
            load = max(self.net_load(gate.output_net), 1e-17)
            delay, output_slew = self._view.gate_timing_samples(
                gate.cell_name, input_slew, load)
            arrivals[gate.output_net] = input_arrival + delay
            slews[gate.output_net] = output_slew

        output_summaries = {net: summarize(arrivals[net])
                            for net in self._netlist.primary_outputs}
        critical_output = max(output_summaries,
                              key=lambda net: output_summaries[net].mean)
        return SstaReport(
            critical_output=critical_output,
            delay_samples=arrivals[critical_output].copy(),
            summary=output_summaries[critical_output],
            output_summaries=output_summaries,
        )
