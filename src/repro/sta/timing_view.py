"""Timing views: how the STA engine queries characterized cells.

The STA engine does not care where the timing numbers come from -- the
proposed compact-model flow, a look-up table, or raw Monte Carlo -- it only
needs, for each cell type, the input pin capacitance and a function from
``(input slew, load capacitance)`` to ``(delay, output slew)`` at the
analysis supply.  :class:`TimingView` provides the nominal interface and
:class:`StatisticalTimingView` the per-seed vectorized variant used by SSTA.

Both views answer **batched** queries -- :meth:`TimingView.gate_timing_many`
and :meth:`StatisticalTimingView.gate_timing_samples_many` evaluate one cell
type at many ``(slew, load)`` points in a single call.  A view built from
the characterization flows routes these through the vectorized model
evaluators (one NumPy pass for a whole level of a netlist); views with only
a scalar callback fall back to an internal loop, so the batched engines work
against any view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.characterization.input_space import InputCondition
from repro.core.characterizer import BayesianCharacterizer
from repro.core.statistical_flow import StatisticalCharacterization
from repro.runtime import resolve_max_bytes
from repro.runtime.chunking import plan_chunks


def _query_chunks(n_points: int, n_seeds: int) -> list:
    """Memory-budgeted split of a batched timing query's point axis.

    Honors ``repro.runtime.configure(max_bytes=...)`` (one chunk when no
    budget is set).  Per-point working set: the delay and slew outputs plus
    the model evaluator's broadcast intermediates (overdrive, Ieff rows,
    power terms) -- about eight ``n_seeds``-wide double rows.
    """
    return plan_chunks(n_points, 8 * 8 * max(n_seeds, 1),
                       resolve_max_bytes(None))


#: Signature of a nominal timing callback: (sin, cload) -> (delay, slew).
TimingCallback = Callable[[float, float], Tuple[float, float]]
#: Signature of a statistical callback: (sin, cload) -> (delay[], slew[]).
SampleCallback = Callable[[float, float], Tuple[np.ndarray, np.ndarray]]
#: Signature of a batched callback: (sin[], cload[]) -> (delay..., slew...)
#: with one leading axis over query points (plus a seed axis for samples).
BatchCallback = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class CellTiming:
    """Timing data of one cell type in a view.

    Attributes
    ----------
    cell_name:
        Library cell name.
    input_cap_f:
        Capacitance presented by one input pin, in farads.
    callback:
        Function mapping ``(input_slew_s, load_cap_f)`` to either
        ``(delay_s, slew_s)`` floats (nominal view) or per-seed arrays
        (statistical view).
    batch_callback:
        Optional vectorized form mapping ``(slews[], loads[])`` arrays to
        ``(delays, slews)`` with one row per query point.  When absent,
        batched queries loop over ``callback`` -- same numbers, no speedup.
    """

    cell_name: str
    input_cap_f: float
    callback: Callable
    batch_callback: Optional[BatchCallback] = None


class TimingView:
    """Nominal timing view over a set of cell types."""

    def __init__(self, vdd: float, cells: Mapping[str, CellTiming]):
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        if not cells:
            raise ValueError("at least one cell timing entry is required")
        self._vdd = vdd
        self._cells = dict(cells)

    @property
    def vdd(self) -> float:
        """Supply voltage the view was characterized at."""
        return self._vdd

    def has_cell(self, cell_name: str) -> bool:
        """Whether the view covers a cell type."""
        return cell_name in self._cells

    def input_capacitance(self, cell_name: str) -> float:
        """Input pin capacitance of a cell type, in farads."""
        return self._entry(cell_name).input_cap_f

    def input_capacitances(self) -> Dict[str, float]:
        """Input pin capacitance of every covered cell type, in farads."""
        return {name: entry.input_cap_f for name, entry in self._cells.items()}

    def gate_timing(self, cell_name: str, input_slew_s: float, load_cap_f: float
                    ) -> Tuple[float, float]:
        """Delay and output slew of a cell at the given loading, in seconds."""
        delay, slew = self._entry(cell_name).callback(input_slew_s, load_cap_f)
        return float(delay), float(slew)

    def gate_timing_many(self, cell_name: str, input_slews_s: np.ndarray,
                         load_caps_f: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Delay and output slew of one cell at many ``(slew, load)`` points.

        Returns two arrays of the query length.  Uses the entry's
        ``batch_callback`` when available, otherwise falls back to one
        scalar :meth:`gate_timing` call per point.
        """
        entry = self._entry(cell_name)
        slews = np.asarray(input_slews_s, dtype=float).reshape(-1)
        loads = np.asarray(load_caps_f, dtype=float).reshape(-1)
        if slews.size != loads.size:
            raise ValueError("input_slews_s and load_caps_f must match in length")
        if entry.batch_callback is not None:
            chunks = _query_chunks(slews.size, 1)
            if len(chunks) <= 1:
                # Unbudgeted common case: no intermediate copy.
                return self._checked_batch(entry, cell_name, slews, loads,
                                           slews.size)
            delay = np.empty(slews.size)
            slew = np.empty(slews.size)
            # Points are independent queries, so the memory-budgeted chunk
            # walk returns exactly the one-call results.
            for rows in chunks:
                d, s = self._checked_batch(entry, cell_name, slews[rows],
                                           loads[rows], rows.stop - rows.start)
                delay[rows] = d
                slew[rows] = s
            return delay, slew
        delay = np.empty(slews.size)
        slew = np.empty(slews.size)
        for index in range(slews.size):
            delay[index], slew[index] = self.gate_timing(
                cell_name, float(slews[index]), float(loads[index]))
        return delay, slew

    @staticmethod
    def _checked_batch(entry: CellTiming, cell_name: str, slews: np.ndarray,
                       loads: np.ndarray, expected: int
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """One nominal batch-callback call with length validation."""
        delay, slew = entry.batch_callback(slews, loads)
        delay = np.asarray(delay, dtype=float).reshape(-1)
        slew = np.asarray(slew, dtype=float).reshape(-1)
        if delay.size != expected or slew.size != expected:
            raise ValueError(
                f"cell {cell_name!r} batch callback returned "
                f"{delay.size} points, expected {expected}")
        return delay, slew

    def _entry(self, cell_name: str) -> CellTiming:
        if cell_name not in self._cells:
            raise KeyError(f"timing view has no cell {cell_name!r}")
        return self._cells[cell_name]


class StatisticalTimingView(TimingView):
    """Per-seed timing view used by Monte Carlo SSTA."""

    def __init__(self, vdd: float, cells: Mapping[str, CellTiming], n_seeds: int):
        super().__init__(vdd, cells)
        if n_seeds < 2:
            raise ValueError("a statistical view needs at least 2 seeds")
        self._n_seeds = int(n_seeds)

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds carried per query."""
        return self._n_seeds

    def gate_timing(self, cell_name: str, input_slew_s: float, load_cap_f: float
                    ) -> Tuple[float, float]:
        """Ensemble-mean delay and slew, so deterministic STA can run on a
        statistical view (e.g. one produced by the library orchestrator)
        without a separate nominal characterization."""
        delay, slew = self.gate_timing_samples(cell_name, input_slew_s,
                                               load_cap_f)
        return float(np.mean(delay)), float(np.mean(slew))

    def gate_timing_many(self, cell_name: str, input_slews_s: np.ndarray,
                         load_caps_f: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Ensemble-mean delay and slew at many points (deterministic STA)."""
        delay, slew = self.gate_timing_samples_many(cell_name, input_slews_s,
                                                    load_caps_f)
        return delay.mean(axis=1), slew.mean(axis=1)

    def gate_timing_samples(self, cell_name: str, input_slew_s, load_cap_f: float
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-seed delay and output-slew arrays of a cell.

        ``input_slew_s`` may be a scalar or a per-seed array; it is collapsed
        to its mean for the table query (slew variation is second order for
        the circuits used here) while the returned delay/slew remain
        per-seed.
        """
        slew_scalar = float(np.mean(np.asarray(input_slew_s, dtype=float)))
        delay, slew = self._entry(cell_name).callback(slew_scalar, load_cap_f)
        delay = np.asarray(delay, dtype=float).reshape(-1)
        slew = np.asarray(slew, dtype=float).reshape(-1)
        if delay.size != self._n_seeds or slew.size != self._n_seeds:
            raise ValueError(
                f"cell {cell_name!r} returned {delay.size} seeds, expected {self._n_seeds}"
            )
        return delay, slew

    def gate_timing_samples_many(self, cell_name: str,
                                 input_slews_s: np.ndarray,
                                 load_caps_f: np.ndarray
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-seed delay/slew of one cell at many ``(slew, load)`` points.

        ``input_slews_s`` holds one already-collapsed slew per query point
        (pass a ``(n_points, n_seeds)`` array to collapse seed-wise slews to
        their means here, mirroring :meth:`gate_timing_samples`).  Returns
        two ``(n_points, n_seeds)`` arrays.
        """
        entry = self._entry(cell_name)
        slews = np.asarray(input_slews_s, dtype=float)
        if slews.ndim == 2:
            slews = slews.mean(axis=1)
        slews = slews.reshape(-1)
        loads = np.asarray(load_caps_f, dtype=float).reshape(-1)
        if slews.size != loads.size:
            raise ValueError("input_slews_s and load_caps_f must match in length")
        if entry.batch_callback is not None:
            chunks = _query_chunks(slews.size, self._n_seeds)
            if len(chunks) <= 1:
                # Unbudgeted common case: no intermediate copy.
                return self._checked_samples(entry, cell_name, slews, loads,
                                             slews.size)
            delay = np.empty((slews.size, self._n_seeds))
            slew = np.empty((slews.size, self._n_seeds))
            # Chunking the point axis keeps the (points x seeds) working set
            # under the configured budget; rows are independent, so the
            # chunk walk returns exactly the one-call ensemble.
            for rows in chunks:
                d, s = self._checked_samples(entry, cell_name, slews[rows],
                                             loads[rows],
                                             rows.stop - rows.start)
                delay[rows] = d
                slew[rows] = s
        else:
            delay = np.empty((slews.size, self._n_seeds))
            slew = np.empty((slews.size, self._n_seeds))
            for index in range(slews.size):
                delay[index], slew[index] = self.gate_timing_samples(
                    cell_name, float(slews[index]), float(loads[index]))
        return delay, slew

    def _checked_samples(self, entry: CellTiming, cell_name: str,
                         slews: np.ndarray, loads: np.ndarray, expected: int
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """One statistical batch-callback call with shape validation."""
        delay, slew = entry.batch_callback(slews, loads)
        delay = np.asarray(delay, dtype=float)
        slew = np.asarray(slew, dtype=float)
        if delay.shape != (expected, self._n_seeds) or delay.shape != slew.shape:
            raise ValueError(
                f"cell {cell_name!r} returned shape {delay.shape}, expected "
                f"({expected}, {self._n_seeds})")
        return delay, slew


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def timing_view_from_characterizers(
    characterizers: Mapping[str, BayesianCharacterizer],
    vdd: float,
) -> TimingView:
    """Build a nominal :class:`TimingView` from fitted proposed-flow characterizers.

    Every characterizer must already have been fitted (``fit()`` called); the
    view queries its analytical model at the requested slew and load --
    scalar queries one at a time, batched queries in one vectorized model
    evaluation per cell.
    """
    cells: Dict[str, CellTiming] = {}
    for cell_name, characterizer in characterizers.items():
        input_cap = characterizer.input_capacitance

        def make_callbacks(bound=characterizer):
            def callback(input_slew_s: float, load_cap_f: float):
                condition = InputCondition(sin=input_slew_s, cload=load_cap_f, vdd=vdd)
                delay = float(bound.predict_delay([condition])[0])
                slew = float(bound.predict_slew([condition])[0])
                return delay, slew

            def batch_callback(input_slews_s: np.ndarray, load_caps_f: np.ndarray):
                conditions = [InputCondition(sin=float(s), cload=float(c), vdd=vdd)
                              for s, c in zip(input_slews_s, load_caps_f)]
                return (np.asarray(bound.predict_delay(conditions), dtype=float),
                        np.asarray(bound.predict_slew(conditions), dtype=float))

            return callback, batch_callback

        callback, batch_callback = make_callbacks()
        cells[cell_name] = CellTiming(cell_name=cell_name, input_cap_f=input_cap,
                                      callback=callback,
                                      batch_callback=batch_callback)
    return TimingView(vdd=vdd, cells=cells)


def timing_view_from_statistical(
    characterizations: Mapping[str, StatisticalCharacterization],
    input_caps_f: Mapping[str, float],
    vdd: float,
) -> StatisticalTimingView:
    """Build a :class:`StatisticalTimingView` from statistical characterizations.

    Batched queries evaluate the whole ``(n_points, n_seeds)`` ensemble in
    one pass of the compact model's vectorized evaluator
    (:meth:`~repro.core.statistical_flow.StatisticalCharacterization.delay_samples_many`).

    Parameters
    ----------
    characterizations:
        Mapping of cell name to its per-seed characterization.
    input_caps_f:
        Input pin capacitance per cell name, in farads.
    vdd:
        Analysis supply voltage.
    """
    seeds = {char.n_seeds for char in characterizations.values()}
    if len(seeds) != 1:
        raise ValueError("all statistical characterizations must share the seed count")
    n_seeds = seeds.pop()

    cells: Dict[str, CellTiming] = {}
    for cell_name, characterization in characterizations.items():
        if cell_name not in input_caps_f:
            raise KeyError(f"missing input capacitance for cell {cell_name!r}")

        def make_callbacks(bound=characterization):
            def callback(input_slew_s: float, load_cap_f: float):
                condition = InputCondition(sin=input_slew_s, cload=load_cap_f, vdd=vdd)
                return bound.delay_samples(condition), bound.slew_samples(condition)

            def batch_callback(input_slews_s: np.ndarray, load_caps_f: np.ndarray):
                vdd_array = np.full(len(input_slews_s), vdd)
                return (bound.delay_samples_many(input_slews_s, load_caps_f,
                                                 vdd_array),
                        bound.slew_samples_many(input_slews_s, load_caps_f,
                                                vdd_array))

            return callback, batch_callback

        callback, batch_callback = make_callbacks()
        cells[cell_name] = CellTiming(cell_name=cell_name,
                                      input_cap_f=float(input_caps_f[cell_name]),
                                      callback=callback,
                                      batch_callback=batch_callback)
    return StatisticalTimingView(vdd=vdd, cells=cells, n_seeds=n_seeds)
