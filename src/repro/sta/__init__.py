"""Gate-level static timing analysis (STA / SSTA) on characterized libraries.

Statistical library characterization exists to feed statistical static timing
analysis; this package closes that loop so the examples can demonstrate the
full use case.  It provides gate-level netlists, a topological STA engine
with slew propagation and capacitive loading derived from the characterized
cells, and a Monte Carlo SSTA variant that consumes the per-seed delay
ensembles of the statistical flow.
"""

from repro.sta.netlist import Gate, Netlist, inverter_chain, nand_nor_tree, c17_benchmark
from repro.sta.timing_view import (
    CellTiming,
    StatisticalTimingView,
    TimingView,
    timing_view_from_characterizers,
    timing_view_from_statistical,
)
from repro.sta.analysis import PathReport, StaticTimingAnalyzer
from repro.sta.ssta import MonteCarloSsta, SstaReport

__all__ = [
    "CellTiming",
    "Gate",
    "MonteCarloSsta",
    "Netlist",
    "PathReport",
    "SstaReport",
    "StaticTimingAnalyzer",
    "StatisticalTimingView",
    "TimingView",
    "c17_benchmark",
    "inverter_chain",
    "nand_nor_tree",
    "timing_view_from_characterizers",
    "timing_view_from_statistical",
]
