"""Gate-level static timing analysis (STA / SSTA) on characterized libraries.

Statistical library characterization exists to feed statistical static timing
analysis; this package closes that loop so the examples can demonstrate the
full use case.  It provides gate-level netlists (and their compiled,
levelized array form), a topological STA engine with slew propagation and
capacitive loading derived from the characterized cells, and a Monte Carlo
SSTA variant that consumes the per-seed delay ensembles of the statistical
flow.  Both analyzers run a level-batched engine by default (one vectorized
timing query per topological level and cell type) with a per-gate loop
engine retained for equivalence testing, and :mod:`repro.sta.synthetic`
generates seeded netlists of arbitrary scale to exercise them.
"""

from repro.sta.netlist import (
    CompiledNetlist,
    Gate,
    Netlist,
    c17_benchmark,
    compile_netlist,
    inverter_chain,
    nand_nor_tree,
)
from repro.sta.synthetic import random_layered_dag, synthetic_chain, synthetic_tree
from repro.sta.timing_view import (
    CellTiming,
    StatisticalTimingView,
    TimingView,
    timing_view_from_characterizers,
    timing_view_from_statistical,
)
from repro.sta.analysis import ENGINES, PathReport, StaticTimingAnalyzer
from repro.sta.ssta import MonteCarloSsta, SstaReport

__all__ = [
    "CellTiming",
    "CompiledNetlist",
    "ENGINES",
    "Gate",
    "MonteCarloSsta",
    "Netlist",
    "PathReport",
    "SstaReport",
    "StaticTimingAnalyzer",
    "StatisticalTimingView",
    "TimingView",
    "c17_benchmark",
    "compile_netlist",
    "inverter_chain",
    "nand_nor_tree",
    "random_layered_dag",
    "synthetic_chain",
    "synthetic_tree",
    "timing_view_from_characterizers",
    "timing_view_from_statistical",
]
