"""Liberty (.lib) writer for characterized libraries.

The writer emits a well-formed subset of the Liberty format: a ``library``
group with unit declarations, one ``cell`` group per characterized cell with
pin capacitances and a ``timing`` group per arc holding ``cell_rise`` /
``cell_fall`` and ``rise_transition`` / ``fall_transition`` NLDM tables.  For
statistical characterizations, sigma tables are emitted as
``ocv_sigma_cell_rise`` / ``ocv_sigma_cell_fall`` groups (the LVF-style
extension used by variation-aware sign-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cells.library import Transition
from repro.liberty.tables import NldmTable


@dataclass(frozen=True)
class TimingTableSet:
    """Delay and transition tables of one timing arc (one related pin).

    ``sigma_delay`` is optional and only present for statistical
    characterizations.
    """

    related_pin: str
    output_transition: Transition
    delay: NldmTable
    transition: NldmTable
    sigma_delay: Optional[NldmTable] = None


@dataclass
class CellTimingData:
    """Everything the writer needs to emit one cell.

    Attributes
    ----------
    name:
        Cell name.
    function:
        Boolean function of the output pin (Liberty ``function`` attribute).
    input_pin_caps_pf:
        Input pin capacitances in picofarads.
    arcs:
        Timing tables, one entry per (related pin, output transition).
    area:
        Cell area in square micrometres (informational).
    """

    name: str
    function: str
    input_pin_caps_pf: Dict[str, float]
    arcs: List[TimingTableSet] = field(default_factory=list)
    area: float = 1.0


_TEMPLATE_NAME = "delay_template"


class LibertyWriter:
    """Serialize characterized cells into Liberty text."""

    def __init__(self, library_name: str, nominal_voltage: float,
                 temperature_c: float = 25.0):
        if not library_name:
            raise ValueError("library_name must be non-empty")
        if nominal_voltage <= 0.0:
            raise ValueError("nominal_voltage must be positive")
        self._library_name = library_name
        self._voltage = nominal_voltage
        self._temperature = temperature_c
        self._cells: List[CellTimingData] = []

    def add_cell(self, cell_data: CellTimingData) -> None:
        """Queue a cell for emission; duplicate names are rejected."""
        if any(existing.name == cell_data.name for existing in self._cells):
            raise ValueError(f"cell {cell_data.name!r} already added")
        if not cell_data.arcs:
            raise ValueError(f"cell {cell_data.name!r} has no timing arcs")
        self._cells.append(cell_data)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the full library as Liberty text."""
        if not self._cells:
            raise ValueError("add at least one cell before rendering")
        lines: List[str] = []
        lines.append(f"library ({self._library_name}) {{")
        lines.append('  delay_model : "table_lookup";')
        lines.append('  time_unit : "1ns";')
        lines.append('  voltage_unit : "1V";')
        lines.append('  capacitive_load_unit (1, pf);')
        lines.append(f"  nom_voltage : {self._voltage:.4g};")
        lines.append(f"  nom_temperature : {self._temperature:.4g};")
        lines.append(self._render_template(self._cells[0].arcs[0].delay))
        for cell in self._cells:
            lines.append(self._render_cell(cell))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Render and write to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    # ------------------------------------------------------------------
    # Internal rendering helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _format_values(values) -> str:
        rows = [", ".join(f"{value:.6g}" for value in row) for row in values]
        return ", \\\n        ".join(f'"{row}"' for row in rows)

    def _render_template(self, table: NldmTable) -> str:
        slews = ", ".join(f"{value:.6g}" for value in table.input_slews_ns)
        caps = ", ".join(f"{value:.6g}" for value in table.load_caps_pf)
        return (
            f"  lu_table_template ({_TEMPLATE_NAME}) {{\n"
            "    variable_1 : input_net_transition;\n"
            "    variable_2 : total_output_net_capacitance;\n"
            f'    index_1 ("{slews}");\n'
            f'    index_2 ("{caps}");\n'
            "  }"
        )

    def _render_table(self, group_name: str, table: NldmTable) -> str:
        slews = ", ".join(f"{value:.6g}" for value in table.input_slews_ns)
        caps = ", ".join(f"{value:.6g}" for value in table.load_caps_pf)
        return (
            f"        {group_name} ({_TEMPLATE_NAME}) {{\n"
            f'          index_1 ("{slews}");\n'
            f'          index_2 ("{caps}");\n'
            f"          values ({self._format_values(table.values_ns)});\n"
            "        }"
        )

    def _render_arc(self, arc: TimingTableSet) -> str:
        if arc.output_transition is Transition.RISE:
            delay_group, transition_group = "cell_rise", "rise_transition"
            sigma_group = "ocv_sigma_cell_rise"
        else:
            delay_group, transition_group = "cell_fall", "fall_transition"
            sigma_group = "ocv_sigma_cell_fall"
        blocks = [
            "      timing () {",
            f'        related_pin : "{arc.related_pin}";',
            "        timing_sense : negative_unate;",
            self._render_table(delay_group, arc.delay),
            self._render_table(transition_group, arc.transition),
        ]
        if arc.sigma_delay is not None:
            blocks.append(self._render_table(sigma_group, arc.sigma_delay))
        blocks.append("      }")
        return "\n".join(blocks)

    def _render_cell(self, cell: CellTimingData) -> str:
        blocks = [f"  cell ({cell.name}) {{", f"    area : {cell.area:.4g};"]
        for pin_name, cap_pf in cell.input_pin_caps_pf.items():
            blocks.append(
                f"    pin ({pin_name}) {{\n"
                "      direction : input;\n"
                f"      capacitance : {cap_pf:.6g};\n"
                "    }"
            )
        output_blocks = [
            "    pin (Z) {",
            "      direction : output;",
            f'      function : "{cell.function}";',
        ]
        for arc in cell.arcs:
            output_blocks.append(self._render_arc(arc))
        output_blocks.append("    }")
        blocks.append("\n".join(output_blocks))
        blocks.append("  }")
        return "\n".join(blocks)
