"""Parser for the Liberty subset emitted by :class:`repro.liberty.writer.LibertyWriter`.

The parser understands the group-based Liberty syntax (``name (args) { ... }``
groups, ``attribute : value;`` statements, quoted index/value lists with line
continuations) well enough to round-trip everything the writer produces:
library attributes, cell areas, pin capacitances, and the NLDM delay /
transition / sigma tables of every timing arc.  It is not a general Liberty
front end -- exotic constructs of commercial libraries are out of scope.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.library import Transition
from repro.liberty.tables import NldmTable


@dataclass
class ParsedArc:
    """One timing group of a parsed cell."""

    related_pin: str
    output_transition: Transition
    delay: NldmTable
    transition: NldmTable
    sigma_delay: Optional[NldmTable] = None


@dataclass
class ParsedCell:
    """One parsed Liberty cell."""

    name: str
    area: float
    function: str
    input_pin_caps_pf: Dict[str, float] = field(default_factory=dict)
    arcs: List[ParsedArc] = field(default_factory=list)


@dataclass
class LibertyLibrary:
    """A parsed Liberty library (subset)."""

    name: str
    nom_voltage: float
    nom_temperature: float
    cells: Dict[str, ParsedCell] = field(default_factory=dict)

    def cell(self, name: str) -> ParsedCell:
        """Look up a parsed cell by name."""
        if name not in self.cells:
            raise KeyError(f"library {self.name!r} has no cell {name!r}")
        return self.cells[name]


# ----------------------------------------------------------------------
# Tokenization into a group tree
# ----------------------------------------------------------------------
@dataclass
class _Group:
    kind: str
    argument: str
    attributes: Dict[str, str] = field(default_factory=dict)
    complex_attributes: List[Tuple[str, str]] = field(default_factory=list)
    children: List["_Group"] = field(default_factory=list)

    def find_all(self, kind: str) -> List["_Group"]:
        return [child for child in self.children if child.kind == kind]

    def find_one(self, kind: str) -> Optional["_Group"]:
        groups = self.find_all(kind)
        return groups[0] if groups else None


_GROUP_RE = re.compile(r"^(\w+)\s*\(([^)]*)\)\s*\{$")
_ATTR_RE = re.compile(r"^(\w+)\s*:\s*(.+?);$")
_COMPLEX_RE = re.compile(r"^(\w+)\s*\((.*)\)\s*;$", re.DOTALL)


def _logical_lines(text: str) -> List[str]:
    """Split Liberty text into logical lines, joining ``\\`` continuations."""
    joined = text.replace("\\\n", " ")
    lines = []
    for raw in joined.splitlines():
        stripped = raw.strip()
        if stripped and not stripped.startswith("/*") and not stripped.startswith("//"):
            lines.append(stripped)
    return lines


def _parse_group_tree(lines: List[str], start: int) -> Tuple[_Group, int]:
    match = _GROUP_RE.match(lines[start])
    if not match:
        raise ValueError(f"expected a group header, got {lines[start]!r}")
    group = _Group(kind=match.group(1), argument=match.group(2).strip())
    index = start + 1
    while index < len(lines):
        line = lines[index]
        if line == "}":
            return group, index + 1
        if _GROUP_RE.match(line):
            child, index = _parse_group_tree(lines, index)
            group.children.append(child)
            continue
        attr_match = _ATTR_RE.match(line)
        if attr_match:
            group.attributes[attr_match.group(1)] = attr_match.group(2).strip().strip('"')
            index += 1
            continue
        complex_match = _COMPLEX_RE.match(line)
        if complex_match:
            group.complex_attributes.append(
                (complex_match.group(1), complex_match.group(2)))
            index += 1
            continue
        raise ValueError(f"cannot parse Liberty line: {line!r}")
    raise ValueError("unterminated Liberty group (missing closing brace)")


def _parse_number_list(text: str) -> np.ndarray:
    cleaned = text.replace('"', " ").replace(",", " ")
    values = [float(token) for token in cleaned.split()]
    return np.array(values)


def _table_from_group(group: _Group) -> NldmTable:
    index_1 = index_2 = values = None
    for name, payload in group.complex_attributes:
        if name == "index_1":
            index_1 = _parse_number_list(payload)
        elif name == "index_2":
            index_2 = _parse_number_list(payload)
        elif name == "values":
            values = _parse_number_list(payload)
    if index_1 is None or index_2 is None or values is None:
        raise ValueError(f"incomplete NLDM table in group {group.kind!r}")
    return NldmTable(input_slews_ns=index_1, load_caps_pf=index_2,
                     values_ns=values.reshape(index_1.size, index_2.size))


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def parse_liberty(text: str) -> LibertyLibrary:
    """Parse Liberty text (the writer's subset) into a :class:`LibertyLibrary`."""
    lines = _logical_lines(text)
    if not lines:
        raise ValueError("empty Liberty source")
    root, _ = _parse_group_tree(lines, 0)
    if root.kind != "library":
        raise ValueError(f"expected a library group, got {root.kind!r}")

    library = LibertyLibrary(
        name=root.argument,
        nom_voltage=float(root.attributes.get("nom_voltage", "0") or 0.0),
        nom_temperature=float(root.attributes.get("nom_temperature", "25") or 25.0),
    )

    for cell_group in root.find_all("cell"):
        cell = ParsedCell(
            name=cell_group.argument,
            area=float(cell_group.attributes.get("area", "0")),
            function="",
        )
        for pin_group in cell_group.find_all("pin"):
            direction = pin_group.attributes.get("direction", "input")
            if direction == "input":
                cell.input_pin_caps_pf[pin_group.argument] = float(
                    pin_group.attributes.get("capacitance", "0"))
                continue
            cell.function = pin_group.attributes.get("function", "")
            for timing_group in pin_group.find_all("timing"):
                related_pin = timing_group.attributes.get("related_pin", "")
                delay_group = (timing_group.find_one("cell_rise")
                               or timing_group.find_one("cell_fall"))
                transition_group = (timing_group.find_one("rise_transition")
                                    or timing_group.find_one("fall_transition"))
                if delay_group is None or transition_group is None:
                    raise ValueError(
                        f"timing group of {cell.name}/{related_pin} lacks tables")
                output_transition = (Transition.RISE
                                     if delay_group.kind == "cell_rise"
                                     else Transition.FALL)
                sigma_group = (timing_group.find_one("ocv_sigma_cell_rise")
                               or timing_group.find_one("ocv_sigma_cell_fall"))
                cell.arcs.append(ParsedArc(
                    related_pin=related_pin,
                    output_transition=output_transition,
                    delay=_table_from_group(delay_group),
                    transition=_table_from_group(transition_group),
                    sigma_delay=(_table_from_group(sigma_group)
                                 if sigma_group is not None else None),
                ))
        library.cells[cell.name] = cell
    return library
