"""NLDM-style two-dimensional timing tables.

Liberty's non-linear delay model (NLDM) stores delay and transition time in
tables indexed by input transition time (``index_1``) and output load
capacitance (``index_2``), at a fixed characterization supply.  The tables
here use the library's customary units -- nanoseconds and picofarads -- and
provide the bilinear lookup STA engines perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.utils.units import NANO, PICO


@dataclass(frozen=True)
class NldmTable:
    """A 2-D table of values indexed by input slew and load capacitance.

    Attributes
    ----------
    input_slews_ns:
        ``index_1`` values in nanoseconds, strictly increasing.
    load_caps_pf:
        ``index_2`` values in picofarads, strictly increasing.
    values_ns:
        Table values (delay or transition) in nanoseconds, shape
        ``(len(input_slews_ns), len(load_caps_pf))``.
    """

    input_slews_ns: np.ndarray
    load_caps_pf: np.ndarray
    values_ns: np.ndarray

    def __post_init__(self) -> None:
        slews = np.asarray(self.input_slews_ns, dtype=float)
        caps = np.asarray(self.load_caps_pf, dtype=float)
        values = np.asarray(self.values_ns, dtype=float)
        if slews.ndim != 1 or caps.ndim != 1:
            raise ValueError("table indices must be 1-D arrays")
        if np.any(np.diff(slews) <= 0) or np.any(np.diff(caps) <= 0):
            raise ValueError("table indices must be strictly increasing")
        if values.shape != (slews.size, caps.size):
            raise ValueError(
                f"values shape {values.shape} does not match indices "
                f"({slews.size}, {caps.size})"
            )
        object.__setattr__(self, "input_slews_ns", slews)
        object.__setattr__(self, "load_caps_pf", caps)
        object.__setattr__(self, "values_ns", values)

    def lookup(self, input_slew_s: float, load_cap_f: float) -> float:
        """Bilinear lookup; arguments in SI units, result in seconds."""
        slew_ns = input_slew_s / NANO
        cap_pf = load_cap_f / PICO
        slew_ns = float(np.clip(slew_ns, self.input_slews_ns[0], self.input_slews_ns[-1]))
        cap_pf = float(np.clip(cap_pf, self.load_caps_pf[0], self.load_caps_pf[-1]))

        def bracket(axis: np.ndarray, value: float) -> Tuple[int, int, float]:
            if axis.size == 1:
                return 0, 0, 0.0
            high = int(np.clip(np.searchsorted(axis, value), 1, axis.size - 1))
            low = high - 1
            span = axis[high] - axis[low]
            return low, high, 0.0 if span == 0 else (value - axis[low]) / span

        i0, i1, fi = bracket(self.input_slews_ns, slew_ns)
        j0, j1, fj = bracket(self.load_caps_pf, cap_pf)
        v00, v01 = self.values_ns[i0, j0], self.values_ns[i0, j1]
        v10, v11 = self.values_ns[i1, j0], self.values_ns[i1, j1]
        value_ns = ((1 - fi) * ((1 - fj) * v00 + fj * v01)
                    + fi * ((1 - fj) * v10 + fj * v11))
        return float(value_ns) * NANO


def build_nldm_table(
    evaluate: Callable[[float, float], float],
    input_slews_s: Sequence[float],
    load_caps_f: Sequence[float],
) -> NldmTable:
    """Build an :class:`NldmTable` by evaluating a response function on a grid.

    Parameters
    ----------
    evaluate:
        Callable mapping ``(input_slew_seconds, load_cap_farads)`` to a
        response in seconds -- typically a closure over a characterizer's
        ``predict_delay`` / ``predict_slew`` at a fixed supply.
    input_slews_s, load_caps_f:
        Grid axes in SI units.
    """
    slews = np.asarray(list(input_slews_s), dtype=float)
    caps = np.asarray(list(load_caps_f), dtype=float)
    if slews.size < 1 or caps.size < 1:
        raise ValueError("at least one slew and one load value are required")
    values = np.empty((slews.size, caps.size))
    for i, slew in enumerate(slews):
        for j, cap in enumerate(caps):
            values[i, j] = evaluate(float(slew), float(cap)) / NANO
    return NldmTable(input_slews_ns=slews / NANO, load_caps_pf=caps / PICO,
                     values_ns=values)
