"""Liberty-subset export / import of characterized libraries.

Downstream STA tools consume characterized libraries in the Liberty (``.lib``)
format: NLDM tables of delay and output slew indexed by input slew and load
capacitance, one per timing arc, plus pin capacitances.  This package writes
a well-formed subset of Liberty from any characterization flow in this
library (proposed, LUT, or baseline) -- including sigma tables for
statistical characterizations -- and parses that subset back, so round-trip
tests can confirm nothing is lost.
"""

from repro.liberty.tables import NldmTable, build_nldm_table
from repro.liberty.writer import CellTimingData, LibertyWriter, TimingTableSet
from repro.liberty.parser import LibertyLibrary, parse_liberty

__all__ = [
    "CellTimingData",
    "LibertyLibrary",
    "LibertyWriter",
    "NldmTable",
    "TimingTableSet",
    "build_nldm_table",
    "parse_liberty",
]
