"""Catalog of synthetic standard cells.

The paper characterizes INV, NAND2 and NOR2 cells (Table I) drawn from
production libraries.  The catalog here provides those plus the other common
static CMOS combinational cells (three-input gates, AOI/OAI complex gates) and
drive-strength variants, so the examples and the downstream STA engine have a
realistic library to work with.

Sizing follows the textbook logical-effort convention: the reference inverter
uses a 2:1 PMOS:NMOS width ratio, and series stacks are upsized by the stack
depth so each arc presents roughly the reference inverter's drive.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cells.library import Cell, StandardCellLibrary
from repro.cells.topology import device, parallel, series

#: Unit widths (um) of the X1 reference inverter.
_NMOS_UNIT_UM = 0.40
_PMOS_UNIT_UM = 0.80


def _inv(drive: int) -> Cell:
    return Cell(
        name=f"INV_X{drive}",
        function="!A",
        pull_up=device("A", 1.0),
        pull_down=device("A", 1.0),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _nand2(drive: int) -> Cell:
    return Cell(
        name=f"NAND2_X{drive}",
        function="!(A & B)",
        pull_up=parallel(device("A", 1.0), device("B", 1.0)),
        pull_down=series(device("A", 2.0), device("B", 2.0)),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _nand3(drive: int) -> Cell:
    return Cell(
        name=f"NAND3_X{drive}",
        function="!(A & B & C)",
        pull_up=parallel(device("A", 1.0), device("B", 1.0), device("C", 1.0)),
        pull_down=series(device("A", 3.0), device("B", 3.0), device("C", 3.0)),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _nor2(drive: int) -> Cell:
    return Cell(
        name=f"NOR2_X{drive}",
        function="!(A | B)",
        pull_up=series(device("A", 2.0), device("B", 2.0)),
        pull_down=parallel(device("A", 1.0), device("B", 1.0)),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _nor3(drive: int) -> Cell:
    return Cell(
        name=f"NOR3_X{drive}",
        function="!(A | B | C)",
        pull_up=series(device("A", 3.0), device("B", 3.0), device("C", 3.0)),
        pull_down=parallel(device("A", 1.0), device("B", 1.0), device("C", 1.0)),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _aoi21(drive: int) -> Cell:
    """AND-OR-INVERT: Z = !((A & B) | C)."""
    return Cell(
        name=f"AOI21_X{drive}",
        function="!((A & B) | C)",
        pull_up=series(parallel(device("A", 2.0), device("B", 2.0)), device("C", 2.0)),
        pull_down=parallel(series(device("A", 2.0), device("B", 2.0)), device("C", 1.0)),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _oai21(drive: int) -> Cell:
    """OR-AND-INVERT: Z = !((A | B) & C)."""
    return Cell(
        name=f"OAI21_X{drive}",
        function="!((A | B) & C)",
        pull_up=parallel(series(device("A", 2.0), device("B", 2.0)), device("C", 1.0)),
        pull_down=series(parallel(device("A", 2.0), device("B", 2.0)), device("C", 2.0)),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _aoi22(drive: int) -> Cell:
    """AND-OR-INVERT: Z = !((A & B) | (C & D))."""
    return Cell(
        name=f"AOI22_X{drive}",
        function="!((A & B) | (C & D))",
        pull_up=series(parallel(device("A", 2.0), device("B", 2.0)),
                       parallel(device("C", 2.0), device("D", 2.0))),
        pull_down=parallel(series(device("A", 2.0), device("B", 2.0)),
                           series(device("C", 2.0), device("D", 2.0))),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


def _oai22(drive: int) -> Cell:
    """OR-AND-INVERT: Z = !((A | B) & (C | D))."""
    return Cell(
        name=f"OAI22_X{drive}",
        function="!((A | B) & (C | D))",
        pull_up=parallel(series(device("A", 2.0), device("C", 2.0)),
                         series(device("B", 2.0), device("D", 2.0))),
        pull_down=series(parallel(device("A", 2.0), device("B", 2.0)),
                         parallel(device("C", 2.0), device("D", 2.0))),
        nmos_unit_width_um=_NMOS_UNIT_UM * drive,
        pmos_unit_width_um=_PMOS_UNIT_UM * drive,
        drive_strength=drive,
    )


#: Builders for every catalog cell, keyed by cell name.
_CELL_BUILDERS: Dict[str, Callable[[], Cell]] = {}


def _register(base_name: str, builder: Callable[[int], Cell], drives=(1, 2, 4)) -> None:
    for drive in drives:
        name = f"{base_name}_X{drive}"
        _CELL_BUILDERS[name] = (lambda b=builder, d=drive: b(d))


_register("INV", _inv, drives=(1, 2, 4, 8))
_register("NAND2", _nand2)
_register("NAND3", _nand3, drives=(1, 2))
_register("NOR2", _nor2)
_register("NOR3", _nor3, drives=(1, 2))
_register("AOI21", _aoi21, drives=(1, 2))
_register("OAI21", _oai21, drives=(1, 2))
_register("AOI22", _aoi22, drives=(1,))
_register("OAI22", _oai22, drives=(1,))

#: The compact default set used in the paper's experiments (Table I cells).
DEFAULT_CELL_NAMES = ("INV_X1", "NAND2_X1", "NOR2_X1")


def available_cells() -> List[str]:
    """Names of every cell the catalog can build."""
    return sorted(_CELL_BUILDERS)


def make_cell(name: str) -> Cell:
    """Build a single catalog cell by name.

    Raises
    ------
    KeyError
        If the cell name is not in the catalog.
    """
    try:
        builder = _CELL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; available: {', '.join(available_cells())}"
        ) from None
    return builder()


def default_library(cell_names=None, name: str = "repro_stdcells") -> StandardCellLibrary:
    """Build a :class:`StandardCellLibrary` from catalog cells.

    Parameters
    ----------
    cell_names:
        Iterable of catalog cell names; defaults to the full catalog.
    name:
        Library name.
    """
    names = list(cell_names) if cell_names is not None else available_cells()
    return StandardCellLibrary(name, [make_cell(cell_name) for cell_name in names])
