"""Series/parallel transistor-network topology.

A CMOS standard cell's pull-up and pull-down networks are series/parallel
compositions of transistors, one per input pin (per network).  For timing
characterization with single-input switching, the network is collapsed into a
single equivalent device whose width follows the usual conductance rules:

* devices in **series** combine like conductances in series
  (``1 / W_eq = sum(1 / W_i)``), because with the non-switching inputs held at
  their non-controlling values every device in the stack conducts;
* devices in **parallel** contribute only the branch that actually switches in
  the worst case (the other branches are held off), so the equivalent width is
  the switching branch's width.

The module provides a small combinator API (:func:`device`, :func:`series`,
:func:`parallel`) used by the cell catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TransistorSpec:
    """A single transistor inside a network.

    Attributes
    ----------
    pin:
        Name of the input pin driving this transistor's gate.
    width:
        Channel width in multiples of the cell's unit width for the network's
        polarity (the catalog upsizes series stacks so each arc presents
        roughly the drive of the reference inverter).
    """

    pin: str
    width: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ValueError(f"transistor width must be positive, got {self.width}")
        if not self.pin:
            raise ValueError("transistor pin name must be non-empty")


class Network:
    """A series/parallel tree of transistors.

    Instances are created through the :func:`device`, :func:`series`, and
    :func:`parallel` combinators rather than directly.
    """

    _KINDS = ("device", "series", "parallel")

    def __init__(self, kind: str, *, transistor: Optional[TransistorSpec] = None,
                 children: Sequence["Network"] = ()):  # noqa: D401
        if kind not in self._KINDS:
            raise ValueError(f"unknown network kind {kind!r}")
        if kind == "device":
            if transistor is None:
                raise ValueError("device networks require a transistor")
            if children:
                raise ValueError("device networks cannot have children")
        else:
            if transistor is not None:
                raise ValueError("composite networks cannot hold a transistor")
            if len(children) < 1:
                raise ValueError(f"{kind} networks need at least one child")
        self._kind = kind
        self._transistor = transistor
        self._children: Tuple[Network, ...] = tuple(children)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"device"``, ``"series"``, or ``"parallel"``."""
        return self._kind

    @property
    def children(self) -> Tuple["Network", ...]:
        """Child networks (empty for device leaves)."""
        return self._children

    @property
    def transistor(self) -> Optional[TransistorSpec]:
        """The transistor of a device leaf, or ``None``."""
        return self._transistor

    def transistors(self) -> Iterator[TransistorSpec]:
        """Iterate over every transistor in the network (depth first)."""
        if self._kind == "device":
            assert self._transistor is not None
            yield self._transistor
            return
        for child in self._children:
            yield from child.transistors()

    def pins(self) -> List[str]:
        """All pin names appearing in the network, in first-seen order."""
        seen: List[str] = []
        for transistor in self.transistors():
            if transistor.pin not in seen:
                seen.append(transistor.pin)
        return seen

    def contains_pin(self, pin: str) -> bool:
        """Whether any transistor in the network is driven by ``pin``."""
        return any(t.pin == pin for t in self.transistors())

    def total_width(self) -> float:
        """Sum of all transistor widths (used for area/leakage estimates)."""
        return sum(t.width for t in self.transistors())

    # ------------------------------------------------------------------
    # Equivalent-width reduction
    # ------------------------------------------------------------------
    def on_width(self) -> float:
        """Equivalent width with every input at its controlling value.

        All devices conduct: series stacks combine harmonically, parallel
        branches add.
        """
        if self._kind == "device":
            assert self._transistor is not None
            return self._transistor.width
        child_widths = [child.on_width() for child in self._children]
        if self._kind == "series":
            return 1.0 / sum(1.0 / width for width in child_widths)
        return sum(child_widths)

    def switching_width(self, pin: str) -> float:
        """Worst-case equivalent width when only ``pin`` switches.

        Non-switching inputs are held at their *non-controlling* values for
        this network, which turns series companions on and parallel
        companions off.

        Raises
        ------
        KeyError
            If ``pin`` does not drive any transistor in this network.
        """
        if not self.contains_pin(pin):
            raise KeyError(f"pin {pin!r} not present in network")
        if self._kind == "device":
            assert self._transistor is not None
            return self._transistor.width
        if self._kind == "series":
            inverse = 0.0
            for child in self._children:
                if child.contains_pin(pin):
                    inverse += 1.0 / child.switching_width(pin)
                else:
                    inverse += 1.0 / child.on_width()
            return 1.0 / inverse
        # Parallel: worst case keeps only the switching branch conducting.
        for child in self._children:
            if child.contains_pin(pin):
                return child.switching_width(pin)
        raise KeyError(f"pin {pin!r} not present in network")  # pragma: no cover

    def output_adjacent_width(self) -> float:
        """Total width of devices whose drain touches the output node.

        Used to estimate the cell's parasitic output capacitance.  In a
        series stack only the outermost device touches the output; in a
        parallel group every branch does.
        """
        if self._kind == "device":
            assert self._transistor is not None
            return self._transistor.width
        if self._kind == "series":
            return self._children[0].output_adjacent_width()
        return sum(child.output_adjacent_width() for child in self._children)

    def stack_depth(self) -> int:
        """Maximum number of devices in series between output and rail."""
        if self._kind == "device":
            return 1
        if self._kind == "series":
            return sum(child.stack_depth() for child in self._children)
        return max(child.stack_depth() for child in self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._kind == "device":
            return f"device({self._transistor.pin}, w={self._transistor.width:g})"
        inner = ", ".join(repr(child) for child in self._children)
        return f"{self._kind}({inner})"


def device(pin: str, width: float = 1.0) -> Network:
    """A single-transistor network driven by ``pin``."""
    return Network("device", transistor=TransistorSpec(pin=pin, width=width))


def series(*children: Network) -> Network:
    """A series stack of sub-networks (output node at the first child)."""
    return Network("series", children=children)


def parallel(*children: Network) -> Network:
    """A parallel combination of sub-networks."""
    return Network("parallel", children=children)
