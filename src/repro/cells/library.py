"""Cell and standard-cell-library containers.

A :class:`Cell` pairs a pull-up and a pull-down transistor network with unit
device widths and exposes its timing arcs (one per input pin and output
transition direction, single-input switching).  A
:class:`StandardCellLibrary` is a named, ordered collection of cells for one
technology-independent logical view; the characterization flows bind it to a
:class:`~repro.technology.node.TechnologyNode` at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.cells.topology import Network


class Transition(str, enum.Enum):
    """Output transition direction of a timing arc."""

    RISE = "rise"
    FALL = "fall"

    @property
    def opposite(self) -> "Transition":
        """The complementary transition."""
        return Transition.FALL if self is Transition.RISE else Transition.RISE


@dataclass(frozen=True)
class TimingArc:
    """One single-input-switching timing arc of a cell.

    Attributes
    ----------
    cell_name:
        Name of the owning cell.
    input_pin:
        The switching input pin.
    output_transition:
        Direction of the output transition (:class:`Transition`).  Because
        all catalog cells are negative-unate static CMOS gates, a rising
        output corresponds to a falling input and vice versa.
    """

    cell_name: str
    input_pin: str
    output_transition: Transition

    @property
    def name(self) -> str:
        """A compact arc label such as ``"NAND2_X1:A->Z(fall)"``."""
        return f"{self.cell_name}:{self.input_pin}->Z({self.output_transition.value})"


@dataclass(frozen=True)
class Cell:
    """A static CMOS standard cell.

    Attributes
    ----------
    name:
        Cell name, e.g. ``"NAND2_X1"``.
    function:
        Human-readable Boolean function of the output, e.g. ``"!(A & B)"``.
    pull_up:
        PMOS network between the supply and the output.
    pull_down:
        NMOS network between the output and ground.
    nmos_unit_width_um, pmos_unit_width_um:
        Physical width (micrometres) corresponding to a width of 1.0 in the
        network description; drive-strength variants scale these.
    drive_strength:
        Nominal drive index (1, 2, 4, ...), informational.
    """

    name: str
    function: str
    pull_up: Network
    pull_down: Network
    nmos_unit_width_um: float = 0.40
    pmos_unit_width_um: float = 0.80
    drive_strength: int = 1

    def __post_init__(self) -> None:
        if self.nmos_unit_width_um <= 0.0 or self.pmos_unit_width_um <= 0.0:
            raise ValueError("unit widths must be positive")
        up_pins = set(self.pull_up.pins())
        down_pins = set(self.pull_down.pins())
        if up_pins != down_pins:
            raise ValueError(
                f"cell {self.name}: pull-up pins {sorted(up_pins)} do not match "
                f"pull-down pins {sorted(down_pins)}"
            )

    # ------------------------------------------------------------------
    # Pins and arcs
    # ------------------------------------------------------------------
    @property
    def input_pins(self) -> List[str]:
        """Input pin names in declaration order."""
        return self.pull_down.pins()

    @property
    def output_pin(self) -> str:
        """Output pin name (all catalog cells have a single output ``Z``)."""
        return "Z"

    def timing_arcs(self, transitions: Sequence[Transition] = (Transition.RISE,
                                                               Transition.FALL)
                    ) -> List[TimingArc]:
        """All single-input-switching timing arcs of this cell."""
        arcs = []
        for pin in self.input_pins:
            for transition in transitions:
                arcs.append(TimingArc(cell_name=self.name, input_pin=pin,
                                      output_transition=Transition(transition)))
        return arcs

    def arc(self, input_pin: str, output_transition: Transition) -> TimingArc:
        """Look up one specific timing arc.

        Raises
        ------
        KeyError
            If the pin does not exist on this cell.
        """
        if input_pin not in self.input_pins:
            raise KeyError(f"cell {self.name} has no input pin {input_pin!r}")
        return TimingArc(cell_name=self.name, input_pin=input_pin,
                         output_transition=Transition(output_transition))

    # ------------------------------------------------------------------
    # Simple physical summaries
    # ------------------------------------------------------------------
    def input_gate_width_um(self, pin: str) -> float:
        """Total gate width (um) connected to ``pin`` (for input capacitance)."""
        if pin not in self.input_pins:
            raise KeyError(f"cell {self.name} has no input pin {pin!r}")
        width = 0.0
        for transistor in self.pull_down.transistors():
            if transistor.pin == pin:
                width += transistor.width * self.nmos_unit_width_um
        for transistor in self.pull_up.transistors():
            if transistor.pin == pin:
                width += transistor.width * self.pmos_unit_width_um
        return width

    def total_device_width_um(self) -> float:
        """Total transistor width in the cell (area / leakage proxy)."""
        return (self.pull_down.total_width() * self.nmos_unit_width_um
                + self.pull_up.total_width() * self.pmos_unit_width_um)


class StandardCellLibrary:
    """An ordered, named collection of :class:`Cell` objects."""

    def __init__(self, name: str, cells: Sequence[Cell] = ()):
        self._name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            self.add(cell)

    @property
    def name(self) -> str:
        """Library name."""
        return self._name

    def add(self, cell: Cell) -> None:
        """Add a cell; raises ``ValueError`` on duplicate names."""
        if cell.name in self._cells:
            raise ValueError(f"cell {cell.name!r} already present in library {self._name!r}")
        self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def get(self, name: str) -> Cell:
        """Look up a cell by name (raises ``KeyError`` if missing)."""
        if name not in self._cells:
            raise KeyError(f"library {self._name!r} has no cell {name!r}")
        return self._cells[name]

    def cell_names(self) -> List[str]:
        """Names of all cells in insertion order."""
        return list(self._cells)

    def timing_arcs(self) -> List[TimingArc]:
        """Every timing arc of every cell in the library."""
        arcs: List[TimingArc] = []
        for cell in self:
            arcs.extend(cell.timing_arcs())
        return arcs

    def subset(self, names: Sequence[str], name: Optional[str] = None
               ) -> "StandardCellLibrary":
        """A new library containing only the named cells (in the given order)."""
        subset_name = name if name is not None else f"{self._name}_subset"
        return StandardCellLibrary(subset_name, [self.get(n) for n in names])
