"""Standard-cell descriptions and equivalent-inverter reduction.

Cells are described structurally -- a pull-up network of PMOS devices and a
complementary pull-down network of NMOS devices, each a series/parallel tree
-- and reduced to an *equivalent inverter* per timing arc, exactly as in the
paper (its Fig. 1(b)): the conducting stack is collapsed into a single device
of equivalent width, the restoring network into a single opposing device, and
the drain parasitics into a lumped output capacitance.
"""

from repro.cells.topology import Network, TransistorSpec, device, parallel, series
from repro.cells.library import Cell, StandardCellLibrary, TimingArc, Transition
from repro.cells.catalog import (
    DEFAULT_CELL_NAMES,
    available_cells,
    default_library,
    make_cell,
)
from repro.cells.equivalent_inverter import (
    EquivalentInverter,
    clear_reduction_cache,
    reduce_cell,
    reduce_cell_cached,
)

__all__ = [
    "Cell",
    "DEFAULT_CELL_NAMES",
    "EquivalentInverter",
    "Network",
    "StandardCellLibrary",
    "TimingArc",
    "Transition",
    "TransistorSpec",
    "available_cells",
    "clear_reduction_cache",
    "default_library",
    "device",
    "make_cell",
    "parallel",
    "reduce_cell",
    "reduce_cell_cached",
    "series",
]
