"""Equivalent-inverter reduction of multi-input cells.

Following the paper (Fig. 1(b)) and the classic Weste & Eshraghian treatment,
any static CMOS gate is mapped, per timing arc, onto an equivalent inverter:

* the network that drives the output transition (pull-down for a falling
  output, pull-up for a rising output) is collapsed into a single device of
  the worst-case single-input-switching equivalent width;
* the opposing (restoring) network is collapsed the same way -- it is being
  turned off by the same input edge but still conducts during the first part
  of the transition and therefore influences delay and slew;
* drain parasitics of all devices adjacent to the output are lumped into a
  parasitic output capacitance, and gate-drain overlap of the switching
  devices into a Miller coupling capacitance.

The reduction binds a :class:`~repro.cells.library.Cell` to a
:class:`~repro.technology.node.TechnologyNode` (and optionally a batch of
Monte Carlo process seeds), producing the concrete devices the transient
simulator integrates.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cells.library import Cell, TimingArc, Transition
from repro.devices import MOSFET, effective_current
from repro.runtime import register_runtime_cache
from repro.runtime.cache import LruCache
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


@dataclass(frozen=True)
class EquivalentInverter:
    """The equivalent inverter of one cell timing arc.

    Attributes
    ----------
    cell_name:
        Name of the reduced cell.
    arc:
        The timing arc this reduction corresponds to.
    nmos, pmos:
        Equivalent pull-down / pull-up devices (possibly carrying per-seed
        parameter arrays).
    parasitic_cap:
        Lumped parasitic capacitance at the output node, in farads
        (scalar or per-seed array).
    miller_cap:
        Gate-to-output coupling capacitance, in farads.
    input_cap:
        Gate capacitance presented by the switching input pin, in farads.
    vdd_nominal:
        Nominal supply of the bound technology (convenience for callers).
    """

    cell_name: str
    arc: TimingArc
    nmos: MOSFET
    pmos: MOSFET
    parasitic_cap: np.ndarray
    miller_cap: np.ndarray
    input_cap: np.ndarray
    vdd_nominal: float

    @property
    def driving_device(self) -> MOSFET:
        """The device that drives the output transition of this arc."""
        if self.arc.output_transition is Transition.FALL:
            return self.nmos
        return self.pmos

    @property
    def restoring_device(self) -> MOSFET:
        """The device being turned off during this arc."""
        if self.arc.output_transition is Transition.FALL:
            return self.pmos
        return self.nmos

    def effective_current(self, vdd) -> np.ndarray:
        """``Ieff`` of the driving device at supply ``vdd`` (vectorized)."""
        return effective_current(self.driving_device, vdd)

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds carried by this reduction (1 if nominal)."""
        width = np.asarray(self.driving_device.params.vth0)
        return int(width.size) if width.ndim else 1

    def simulation_signature(self) -> tuple:
        """Hashable token of everything the transient engine reads.

        Two reductions with equal signatures are interchangeable inside
        :func:`repro.spice.batch.simulate_arc_transitions`: the devices
        (model class plus every parameter array, bit for bit), the lumped
        capacitances and the output-transition polarity all match, so their
        conditions can share one mega-batched RK4 pass.  This is how the
        fused library pipeline groups heterogeneous cells -- footprint
        twins (same drive, same topology class, different logic names) land
        in the same group even though their cache identities differ.

        The token is a content digest (cell and arc *names* are deliberately
        excluded -- the engine only reads them for error messages), computed
        lazily and memoized on the frozen instance.
        """
        cached = self.__dict__.get("_simulation_signature")
        if cached is not None:
            return cached
        digest = hashlib.sha256()

        def feed(value) -> None:
            array = np.ascontiguousarray(np.asarray(value, dtype=float))
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())

        for device in (self.nmos, self.pmos):
            digest.update(type(device).__name__.encode())
            for field in dataclasses.fields(device.params):
                value = getattr(device.params, field.name)
                digest.update(field.name.encode())
                if isinstance(value, (str, bytes)) or not np.asarray(
                        value).dtype.kind in "fiub":
                    digest.update(str(value).encode())
                else:
                    feed(value)
        feed(self.parasitic_cap)
        feed(self.miller_cap)
        signature = (self.arc.output_transition.value, digest.hexdigest())
        object.__setattr__(self, "_simulation_signature", signature)
        return signature


def default_arc(cell: Cell) -> TimingArc:
    """The arc a reduction defaults to: first input pin, falling output.

    One definition shared by :func:`reduce_cell`, :func:`reduce_cell_cached`
    and :func:`repro.spice.sweep.sweep_conditions`, so their cache keys and
    measurements can never disagree about what ``arc=None`` means.
    """
    return cell.arc(cell.input_pins[0], Transition.FALL)


def reduce_cell(
    cell: Cell,
    technology: TechnologyNode,
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
) -> EquivalentInverter:
    """Reduce a cell timing arc onto its equivalent inverter.

    Parameters
    ----------
    cell:
        The cell to reduce.
    technology:
        Technology node providing device models and capacitance coefficients.
    arc:
        Timing arc to reduce.  Defaults to the first input pin with a falling
        output transition.
    variation:
        Optional batch of Monte Carlo process seeds; when given, the returned
        devices and capacitances are vectorized over the seeds.

    Returns
    -------
    EquivalentInverter
        The bound equivalent inverter.

    Raises
    ------
    KeyError
        If the arc's input pin does not exist on the cell.
    """
    if arc is None:
        arc = default_arc(cell)
    if arc.input_pin not in cell.input_pins:
        raise KeyError(f"cell {cell.name} has no input pin {arc.input_pin!r}")

    pin = arc.input_pin
    nmos_width = cell.pull_down.switching_width(pin) * cell.nmos_unit_width_um
    pmos_width = cell.pull_up.switching_width(pin) * cell.pmos_unit_width_um

    nmos = technology.make_nmos(nmos_width, variation)
    pmos = technology.make_pmos(pmos_width, variation)

    caps = technology.capacitance
    pull_up_adjacent = cell.pull_up.output_adjacent_width() * cell.pmos_unit_width_um
    pull_down_adjacent = cell.pull_down.output_adjacent_width() * cell.nmos_unit_width_um
    parasitic = caps.output_parasitic(pull_up_adjacent, pull_down_adjacent)
    miller = caps.miller_capacitance(nmos_width) + caps.miller_capacitance(pmos_width)
    input_cap = caps.gate_capacitance(cell.input_gate_width_um(pin))

    cap_mult = np.asarray(variation.cap_mult) if variation is not None else np.asarray(1.0)
    parasitic = np.asarray(parasitic, dtype=float) * cap_mult
    miller = np.asarray(miller, dtype=float) * cap_mult
    input_cap = np.asarray(input_cap, dtype=float) * np.ones_like(cap_mult)

    return EquivalentInverter(
        cell_name=cell.name,
        arc=arc,
        nmos=nmos,
        pmos=pmos,
        parasitic_cap=parasitic,
        miller_cap=miller,
        input_cap=input_cap,
        vdd_nominal=technology.vdd_nominal,
    )


#: LRU cache of equivalent-inverter reductions (see :func:`reduce_cell_cached`),
#: registered in the runtime cache registry so its hit/miss/eviction counters
#: show up in ``repro.runtime.cache_stats()``.
_REDUCTION_CACHE = register_runtime_cache(
    LruCache("reduction", max_entries=512, max_bytes=64 * 2**20))


def arc_identity_key(cell: Cell, technology: TechnologyNode, arc: TimingArc,
                     variation_fingerprint: str) -> tuple:
    """Identity tuple of one bound timing arc, shared by every memoization.

    Both the reduction cache here and the simulation cache in
    :mod:`repro.spice.testbench` key on this single definition, so the two
    can never drift apart.  The technology is identified by name *and*
    content fingerprint (a modified same-name node never collides); the
    cell by name plus its unit device widths (same-name cells with altered
    pull-network topology are not distinguished -- the built-in catalog
    never does that).
    """
    return (
        cell.name,
        float(cell.nmos_unit_width_um),
        float(cell.pmos_unit_width_um),
        technology.name,
        technology.fingerprint(),
        arc.input_pin,
        arc.output_transition.value,
        variation_fingerprint,
    )


def _reduction_key(cell: Cell, technology: TechnologyNode, arc: TimingArc,
                   variation: Optional[VariationSample]) -> tuple:
    variation_fp = variation.fingerprint() if variation is not None else "nominal"
    return arc_identity_key(cell, technology, arc, variation_fp)


def clear_reduction_cache() -> None:
    """Drop all memoized equivalent-inverter reductions."""
    _REDUCTION_CACHE.clear()


def reduce_cell_cached(
    cell: Cell,
    technology: TechnologyNode,
    arc: Optional[TimingArc] = None,
    variation: Optional[VariationSample] = None,
) -> EquivalentInverter:
    """Memoized :func:`reduce_cell`.

    Repeated sweeps over the same ``(cell, arc, variation)`` -- the common
    pattern in the statistical flow and the Monte Carlo baseline, which both
    re-reduce the same cell for every batch of conditions -- reuse the cached
    :class:`EquivalentInverter` instead of re-deriving it.  Keys identify the
    cell and technology by name plus the unit device widths, and the seed
    batch by its content fingerprint, so identical inputs hit regardless of
    object identity.  The returned object is frozen and shared; do not mutate
    its arrays.
    """
    if arc is None:
        arc = default_arc(cell)
    key = _reduction_key(cell, technology, arc, variation)
    cached = _REDUCTION_CACHE.get(key)
    if cached is not None:
        return cached
    inverter = reduce_cell(cell, technology, arc=arc, variation=variation)
    _REDUCTION_CACHE.put(key, inverter)
    return inverter
