"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode on minimal offline
environments that lack the ``wheel`` package required by PEP 517 editable
builds (``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
