"""Whole-library statistical characterization in one call.

The library-scale view of the paper's flow: learn the cross-technology
priors once, then characterize *every* arc of a standard-cell library --
cells x input pins x output transitions -- through
:func:`repro.core.library_flow.characterize_library`, which shares the seed
batch, the priors and the simulation caches across arcs and extracts every
seed's compact-model parameters with the batched MAP solver.  The resulting
:class:`LibraryCharacterization` is consumed directly:

1. Liberty (.lib) export with NLDM mean tables and LVF-style sigma tables;
2. a per-seed statistical timing view driving deterministic STA and Monte
   Carlo SSTA on the ISCAS-85 C17 benchmark;
3. identical results (and identical simulation-run accounting) whether the
   arcs run serially or fanned out over a process pool.

Run with::

    python examples/library_characterization.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import (
    RunLedger,
    SimulationCounter,
    characterize_historical_library,
    characterize_library,
    get_technology,
    historical_technologies,
    learn_prior,
    make_cell,
)
from repro.analysis import format_ledger, format_table
from repro.cells import StandardCellLibrary, Transition
from repro.liberty import parse_liberty
from repro.sta import MonteCarloSsta, StaticTimingAnalyzer, c17_benchmark, nand_nor_tree


def main() -> None:
    start = time.time()
    counter = SimulationCounter()
    target = get_technology("n28_bulk")
    library = StandardCellLibrary(
        "repro_demo", [make_cell(name) for name in ("INV_X1", "NAND2_X1",
                                                    "NOR2_X1")])
    n_seeds = 150

    # ------------------------------------------------------------------
    # Priors from one historical node (kept small so the example is quick).
    # ------------------------------------------------------------------
    historical = [characterize_historical_library(
        historical_technologies(exclude=target.name)[0], list(library),
        counter=counter)]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")
    print(f"Priors learned with {counter.total} simulations")

    # ------------------------------------------------------------------
    # One call characterizes the whole library: every cell, both output
    # transitions, shared seeds, batched extraction.
    # ------------------------------------------------------------------
    t_char = time.time()
    ledger = RunLedger()
    result = characterize_library(
        target, library, delay_prior, slew_prior,
        conditions=4, n_seeds=n_seeds, rng=17, counter=counter,
        ledger=ledger)
    print(f"\nCharacterized {len(result.entries)} arcs of "
          f"{len(result.cell_names())} cells x {result.n_seeds} seeds in "
          f"{time.time() - t_char:.1f} s "
          f"({result.simulation_runs} simulation runs, "
          f"solver={result.solver!r})")
    if result.unconverged_arcs():
        print(f"  WARNING: unconverged extractions on {result.unconverged_arcs()}")

    # Same job fanned out across processes: bit-identical results.
    t_par = time.time()
    parallel = characterize_library(
        target, library, delay_prior, slew_prior,
        conditions=4, n_seeds=n_seeds, rng=17, concurrency="process")
    agree = all(
        np.array_equal(a.statistical.delay_parameters,
                       b.statistical.delay_parameters)
        for a, b in zip(result.entries, parallel.entries))
    print(f"Process fan-out finished in {time.time() - t_par:.1f} s; "
          f"results identical to serial: {agree}")

    # ------------------------------------------------------------------
    # Liberty export (mean + sigma tables) and round trip.
    # ------------------------------------------------------------------
    liberty_path = os.path.join(tempfile.gettempdir(),
                                f"repro_{target.name}_library.lib")
    result.liberty_writer().write(liberty_path)
    parsed = parse_liberty(open(liberty_path, encoding="utf-8").read())
    arcs = sum(len(cell.arcs) for cell in parsed.cells.values())
    print(f"\nLiberty library written to {liberty_path} "
          f"({len(parsed.cells)} cells / {arcs} timing arcs parsed back)")

    # ------------------------------------------------------------------
    # STA + SSTA straight off the library characterization.
    # ------------------------------------------------------------------
    view = result.timing_view(transition=Transition.FALL)
    rows = []
    for netlist in (c17_benchmark(), nand_nor_tree(8)):
        sta = StaticTimingAnalyzer(netlist, view, primary_input_slew=5e-12,
                                   ledger=ledger).run()
        ssta = MonteCarloSsta(netlist, view, primary_input_slew=5e-12,
                              ledger=ledger).run()
        rows.append([
            netlist.name,
            len(netlist.gates),
            sta.critical_delay * 1e12,
            ssta.summary.mean * 1e12,
            ssta.summary.std * 1e12,
            ssta.summary.quantiles[2] * 1e12,
        ])
    print("\n" + format_table(
        ["circuit", "gates", "STA delay (ps)", "SSTA mean (ps)",
         "SSTA sigma (ps)", "SSTA 99% (ps)"],
        rows,
        title=f"Library-characterized timing at {result.vdd_nominal:.2f} V, 28 nm",
    ))
    # ------------------------------------------------------------------
    # The unified run ledger: stage wall time, simulation runs, solver
    # iterations and runtime-cache activity across everything above.
    # ------------------------------------------------------------------
    print("\n" + format_ledger(ledger, title="Unified run ledger"))
    print(f"\nTotal simulations: {counter.total}")
    print(f"Elapsed          : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
