"""Whole-library statistical characterization in one call.

The library-scale view of the paper's flow: learn the cross-technology
priors once, then characterize *every* arc of a standard-cell library --
cells x input pins x output transitions -- through
:func:`repro.core.library_flow.characterize_library`.  The default *fused*
pipeline flattens the whole library into one simulation plan (grouped by
equivalent-inverter signature, deduplicated per operating point) and one
stacked MAP solve per response; the unified ledger shows exactly where the
library's time goes (plan / simulate / extract / solve stages, rows per
signature group).  The resulting :class:`LibraryCharacterization` is
consumed directly:

1. Liberty (.lib) export with NLDM mean tables and LVF-style sigma tables;
2. a per-seed statistical timing view driving deterministic STA and Monte
   Carlo SSTA on the ISCAS-85 C17 benchmark;
3. identical results (and identical simulation-run accounting) whether the
   library runs fused or arc by arc, serially or fanned out over a process
   pool.

Run with::

    python examples/library_characterization.py [--engine batched|serial|adaptive]

``--engine`` selects the transient integration engine of the simulate
phase (default: the runtime-configured engine, i.e. the fixed-step batched
RK4 unless ``REPRO_TRANSIENT_ENGINE`` says otherwise); the run prints the
engine's step/rejection/RHS-evaluation counts from the unified ledger.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import numpy as np

import repro.runtime as runtime
from repro import (
    RunLedger,
    SimulationCounter,
    characterize_historical_library,
    characterize_library,
    get_technology,
    historical_technologies,
    learn_prior,
    make_cell,
)
from repro.analysis import format_cache_stats, format_ledger, format_table
from repro.cells import StandardCellLibrary, Transition
from repro.liberty import parse_liberty
from repro.sta import MonteCarloSsta, StaticTimingAnalyzer, c17_benchmark, nand_nor_tree


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--engine", choices=runtime.TRANSIENT_ENGINES, default=None,
        help="transient integration engine for the simulate phase "
             "(default: runtime-configured; batched fixed-step RK4)")
    args = parser.parse_args()

    start = time.time()
    counter = SimulationCounter()
    target = get_technology("n28_bulk")
    library = StandardCellLibrary(
        "repro_demo", [make_cell(name) for name in ("INV_X1", "NAND2_X1",
                                                    "NOR2_X1")])
    n_seeds = 150

    # ------------------------------------------------------------------
    # Priors from one historical node (kept small so the example is quick).
    # ------------------------------------------------------------------
    historical = [characterize_historical_library(
        historical_technologies(exclude=target.name)[0], list(library),
        counter=counter)]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")
    print(f"Priors learned with {counter.total} simulations")

    # ------------------------------------------------------------------
    # One call characterizes the whole library: every cell, both output
    # transitions, shared seeds, one fused simulation plan, one stacked
    # MAP solve per response.
    # ------------------------------------------------------------------
    t_char = time.time()
    ledger = RunLedger()
    result = characterize_library(
        target, library, delay_prior, slew_prior,
        conditions=4, n_seeds=n_seeds, rng=17, counter=counter,
        ledger=ledger, transient_engine=args.engine)
    fused_seconds = time.time() - t_char
    metrics = ledger.metrics()
    print(f"\nCharacterized {len(result.entries)} arcs of "
          f"{len(result.cell_names())} cells x {result.n_seeds} seeds in "
          f"{fused_seconds:.1f} s "
          f"({result.simulation_runs} simulation runs, "
          f"pipeline={result.pipeline!r}, solver={result.solver!r})")
    print(f"  simulation plan: {metrics.get('fused_rows_simulated', 0)} rows "
          f"in {metrics.get('fused_signature_groups', 0)} signature groups "
          f"({metrics.get('fused_rows_deduplicated', 0)} deduplicated, "
          f"{metrics.get('fused_rows_cached', 0)} cache hits)")
    engine_label = args.engine or runtime.resolve_transient_engine(None)
    print(f"  integration ({engine_label}): "
          f"{metrics.get('transient_steps', 0)} steps taken, "
          f"{metrics.get('transient_steps_rejected', 0)} rejected, "
          f"{metrics.get('transient_rhs_evals', 0)} RHS evaluations")
    if result.unconverged_arcs():
        print(f"  WARNING: unconverged extractions on {result.unconverged_arcs()}")

    # The pre-fusion pipeline (one simulate-and-extract job per arc) on
    # cold caches: same results, one Python-level pass per arc.
    runtime.clear_all_caches()
    t_per_arc = time.time()
    per_arc = characterize_library(
        target, library, delay_prior, slew_prior,
        conditions=4, n_seeds=n_seeds, rng=17, pipeline="per_arc",
        transient_engine=args.engine)
    per_arc_seconds = time.time() - t_per_arc
    agree = all(
        np.allclose(a.statistical.delay_parameters,
                    b.statistical.delay_parameters, rtol=1e-12)
        for a, b in zip(result.entries, per_arc.entries))
    print(f"Per-arc pipeline finished in {per_arc_seconds:.1f} s "
          f"(fused ran {per_arc_seconds / max(fused_seconds, 1e-9):.1f}x "
          f"faster); results match: {agree}")

    # Same fused job fanned out across processes, split on the flat
    # simulation axis: bit-identical results.
    t_par = time.time()
    parallel = characterize_library(
        target, library, delay_prior, slew_prior,
        conditions=4, n_seeds=n_seeds, rng=17, concurrency="process",
        transient_engine=args.engine)
    agree = all(
        np.array_equal(a.statistical.delay_parameters,
                       b.statistical.delay_parameters)
        for a, b in zip(result.entries, parallel.entries))
    print(f"Process fan-out finished in {time.time() - t_par:.1f} s; "
          f"results identical to serial: {agree}")

    # ------------------------------------------------------------------
    # Durable tier: the same run warm-started from disk.  Attaching a
    # DiskStore keeps simulated rows across processes and days; clearing
    # the memory caches models a fresh process, which then refills from
    # the on-disk store instead of re-simulating.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro_disk_cache_") as disk_dir:
        runtime.configure(disk_cache_dir=disk_dir)
        runtime.clear_all_caches()  # force the seed run to write through
        characterize_library(target, library, delay_prior, slew_prior,
                             conditions=4, n_seeds=n_seeds, rng=17,
                             transient_engine=args.engine)
        runtime.clear_all_caches()  # memory gone; the disk tier survives
        t_warm = time.time()
        warm = characterize_library(target, library, delay_prior, slew_prior,
                                    conditions=4, n_seeds=n_seeds, rng=17,
                                    transient_engine=args.engine)
        warm_seconds = time.time() - t_warm
        agree = all(
            np.array_equal(a.statistical.delay_parameters,
                           b.statistical.delay_parameters)
            for a, b in zip(result.entries, warm.entries))
        stats = runtime.cache_stats()
        print(f"Disk-tier warm start finished in {warm_seconds:.1f} s; "
              f"results identical: {agree} "
              f"({stats['simulation'].disk_hits} disk hits, "
              f"{stats['simulation'].disk_quarantined} quarantined)")
        print("\n" + format_cache_stats(stats, title="Cache tiers after warm start"))
        runtime.configure(disk_cache_dir=None)

    # ------------------------------------------------------------------
    # Liberty export (mean + sigma tables) and round trip.
    # ------------------------------------------------------------------
    liberty_path = os.path.join(tempfile.gettempdir(),
                                f"repro_{target.name}_library.lib")
    result.liberty_writer().write(liberty_path)
    parsed = parse_liberty(open(liberty_path, encoding="utf-8").read())
    arcs = sum(len(cell.arcs) for cell in parsed.cells.values())
    print(f"\nLiberty library written to {liberty_path} "
          f"({len(parsed.cells)} cells / {arcs} timing arcs parsed back)")

    # ------------------------------------------------------------------
    # STA + SSTA straight off the library characterization.
    # ------------------------------------------------------------------
    view = result.timing_view(transition=Transition.FALL)
    rows = []
    for netlist in (c17_benchmark(), nand_nor_tree(8)):
        sta = StaticTimingAnalyzer(netlist, view, primary_input_slew=5e-12,
                                   ledger=ledger).run()
        ssta = MonteCarloSsta(netlist, view, primary_input_slew=5e-12,
                              ledger=ledger).run()
        rows.append([
            netlist.name,
            len(netlist.gates),
            sta.critical_delay * 1e12,
            ssta.summary.mean * 1e12,
            ssta.summary.std * 1e12,
            ssta.summary.quantiles[2] * 1e12,
        ])
    print("\n" + format_table(
        ["circuit", "gates", "STA delay (ps)", "SSTA mean (ps)",
         "SSTA sigma (ps)", "SSTA 99% (ps)"],
        rows,
        title=f"Library-characterized timing at {result.vdd_nominal:.2f} V, 28 nm",
    ))
    # ------------------------------------------------------------------
    # The unified run ledger: stage wall time, simulation runs, solver
    # iterations and runtime-cache activity across everything above.
    # ------------------------------------------------------------------
    print("\n" + format_ledger(ledger, title="Unified run ledger"))
    print(f"\nTotal simulations: {counter.total}")
    print(f"Elapsed          : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
