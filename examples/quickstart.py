"""Quickstart: characterize a cell in a new technology from two simulations.

This example reproduces the core promise of the paper on a small scale:

1. characterize a few cells in *historical* technology nodes and fit the
   four-parameter compact timing model per cell;
2. fuse those fits into a Gaussian prior with belief propagation;
3. characterize a NOR2 gate in the *target* 14 nm FinFET node using only
   ``k = 2`` simulated operating points plus the prior (MAP estimation);
4. compare the prediction accuracy and simulation cost against a look-up
   table given the same budget and against a dense reference characterization.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    BayesianCharacterizer,
    InputSpace,
    LutCharacterizer,
    SimulationCounter,
    characterize_historical_library,
    get_technology,
    historical_technologies,
    learn_prior,
    make_cell,
    mean_relative_error,
    nominal_baseline,
)
from repro.analysis import format_table


def main() -> None:
    start = time.time()
    counter = SimulationCounter()

    target = get_technology("n14_finfet")
    cell = make_cell("NOR2_X1")
    print(f"Target technology : {target.describe()}")
    print(f"Cell under test   : {cell.name} ({cell.function})")

    # ------------------------------------------------------------------
    # 1-2. Historical learning (the expensive part, done once per company,
    #      reused for every new technology).  Two historical nodes and the
    #      Table I cells keep this example fast; the paper uses six nodes.
    # ------------------------------------------------------------------
    historical_cells = [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")]
    historical_nodes = historical_technologies(exclude=target.name)[:2]
    print("\nLearning priors from historical nodes: "
          + ", ".join(node.name for node in historical_nodes))
    historical = [
        characterize_historical_library(node, historical_cells, counter=counter)
        for node in historical_nodes
    ]
    delay_prior = learn_prior(historical, response="delay", method="bp")
    slew_prior = learn_prior(historical, response="slew", method="bp")
    print("  " + delay_prior.describe())
    print("  " + slew_prior.describe())
    historical_runs = counter.total

    # ------------------------------------------------------------------
    # 3. Target-technology characterization with k = 2 simulations.
    # ------------------------------------------------------------------
    flow = BayesianCharacterizer(target, cell, delay_prior, slew_prior,
                                 counter=counter)
    flow.fit(2, rng=7)
    print(f"\nProposed flow fitted with k = {flow.result.k} simulations")
    print(f"  delay parameters: {flow.result.delay_fit.params.describe()}")
    print(f"  slew parameters : {flow.result.slew_fit.params.describe()}")

    # ------------------------------------------------------------------
    # 4. Validation against a dense reference characterization.
    # ------------------------------------------------------------------
    validation = InputSpace(target).sample_random(150, rng=42)
    baseline = nominal_baseline(cell, target, validation, counter=counter)

    proposed_error = mean_relative_error(flow.predict_delay(validation),
                                         baseline.delay) * 100.0

    lut = LutCharacterizer(target, cell, counter=counter)
    lut.build(flow.result.simulation_runs)  # same simulation budget
    lut_error = mean_relative_error(lut.predict_delay(validation),
                                    baseline.delay) * 100.0

    lut_large = LutCharacterizer(target, cell, counter=counter)
    lut_large.build(27)
    lut_large_error = mean_relative_error(lut_large.predict_delay(validation),
                                          baseline.delay) * 100.0

    print("\n" + format_table(
        ["flow", "target-tech simulations", "mean delay error (%)"],
        [
            ["proposed (model + prior)", flow.result.simulation_runs, proposed_error],
            ["LUT, same budget", lut.simulation_runs, lut_error],
            ["LUT, 27-point grid", lut_large.simulation_runs, lut_large_error],
            ["dense reference", baseline.simulation_runs, 0.0],
        ],
        title="Nominal delay characterization of NOR2_X1 at 14 nm",
    ))
    print(f"\nHistorical (reusable) simulations : {historical_runs}")
    print(f"Total simulations this run        : {counter.total}")
    print(f"Elapsed                           : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
