"""Library characterization to batched SSTA on a 5000-gate netlist.

The full production path of the reproduced flow, at scale:

1. learn delay/slew priors from one historical node;
2. statistically characterize the INV/NAND2/NOR2 library at 28 nm with the
   library orchestrator (shared seed batch, batched transient engine,
   batched MAP extraction);
3. export the Liberty view (NLDM mean + LVF sigma tables) and build the
   per-seed statistical timing view;
4. generate a seeded 5000-gate random layered DAG and run Monte Carlo SSTA
   on it with the level-batched graph engine -- then once more with the
   per-gate loop engine to show the agreement and the speedup.

Run with::

    python examples/netlist_ssta.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import (
    RunLedger,
    SimulationCounter,
    characterize_historical_library,
    characterize_library,
    get_technology,
    historical_technologies,
    learn_prior,
    make_cell,
)
from repro.analysis import format_ledger, format_table
from repro.sta import MonteCarloSsta, StaticTimingAnalyzer, random_layered_dag


def main() -> None:
    start = time.time()
    counter = SimulationCounter()
    target = get_technology("n28_bulk")
    cells = [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")]
    n_seeds = 200

    # ------------------------------------------------------------------
    # Priors and library-scale statistical characterization.
    # ------------------------------------------------------------------
    historical = [characterize_historical_library(
        historical_technologies(exclude=target.name)[0], cells,
        counter=counter)]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    ledger = RunLedger()
    library = characterize_library(target, cells, delay_prior, slew_prior,
                                   conditions=4, n_seeds=n_seeds, rng=7,
                                   counter=counter, ledger=ledger)
    print(f"Characterized {len(library.entries)} arcs with "
          f"{library.simulation_runs} simulations ({n_seeds} seeds each)")

    liberty_path = os.path.join(tempfile.gettempdir(),
                                f"repro_{target.name}_ssta.lib")
    library.liberty_writer().write(liberty_path)
    print(f"Liberty library written to {liberty_path}")

    # ------------------------------------------------------------------
    # A 5000-gate synthetic netlist, compiled and levelized.
    # ------------------------------------------------------------------
    netlist = random_layered_dag(width=100, depth=50, window=2, rng=17)
    compiled = netlist.compile()
    print(f"\nNetlist {netlist.name}: {compiled.n_gates} gates, "
          f"{compiled.n_nets} nets, {compiled.n_levels} levels, "
          f"{len(netlist.primary_outputs)} primary outputs")

    view = library.timing_view()

    # Deterministic STA on the ensemble means.
    sta_report = StaticTimingAnalyzer(netlist, view,
                                      primary_input_slew=5e-12).run()
    print(f"STA critical delay: {sta_report.critical_delay * 1e12:.1f} ps "
          f"through {len(sta_report.critical_path)} gates "
          f"to {sta_report.critical_output}")

    # ------------------------------------------------------------------
    # Monte Carlo SSTA: batched engine versus the per-gate loop engine.
    # ------------------------------------------------------------------
    reports = {}
    rows = []
    for engine in ("batched", "loop"):
        tic = time.perf_counter()
        reports[engine] = MonteCarloSsta(netlist, view,
                                         primary_input_slew=5e-12,
                                         engine=engine, ledger=ledger).run()
        elapsed = time.perf_counter() - tic
        summary = reports[engine].summary
        rows.append([engine, f"{elapsed:.3f}",
                     f"{summary.mean * 1e12:.1f}", f"{summary.std * 1e12:.2f}",
                     f"{summary.quantiles[2] * 1e12:.1f}",
                     reports[engine].critical_output])
    print("\n" + format_table(
        ["engine", "seconds", "mean (ps)", "sigma (ps)", "99% (ps)",
         "critical output"],
        rows, title=f"SSTA on {compiled.n_gates} gates x {n_seeds} seeds"))

    agreement = np.max(np.abs(reports["batched"].delay_samples
                              - reports["loop"].delay_samples)
                       / reports["loop"].delay_samples)
    print(f"\nEngine agreement: max relative deviation {agreement:.2e}")

    ranked = sorted(reports["batched"].criticality.items(),
                    key=lambda item: item[1], reverse=True)[:5]
    print("Top endpoint criticalities: "
          + ", ".join(f"{net}={prob:.2f}" for net, prob in ranked if prob > 0))
    # The unified run ledger merges the characterization stages with both
    # SSTA runs: wall time per stage, simulation runs, solver iterations,
    # and runtime-cache activity in one record.
    print("\n" + format_ledger(ledger, title="Unified run ledger"))
    print(f"\nTotal simulations: {counter.total}")
    print(f"Elapsed          : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
