"""Statistical characterization of a 28 nm library cell (paper Figs. 7-9).

Demonstrates the per-seed statistical flow:

* the same Monte Carlo process seeds are simulated at a handful of fitting
  input conditions;
* the compact-model parameters are extracted per seed by MAP estimation;
* the resulting parameter ensemble predicts the full delay distribution at
  *any* operating point -- including the non-Gaussian shape at low supply
  voltage that a mean/sigma look-up table cannot represent (Fig. 9).

Run with::

    python examples/statistical_characterization.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    InputCondition,
    InputSpace,
    SimulationCounter,
    StatisticalCharacterizer,
    StatisticalLutCharacterizer,
    characterize_historical_library,
    get_technology,
    historical_technologies,
    learn_prior,
    make_cell,
    statistical_baseline,
    statistical_errors,
)
from repro.analysis import empirical_pdf, normality_deviation, summarize, format_table


def main() -> None:
    start = time.time()
    counter = SimulationCounter()

    target = get_technology("n28_bulk")
    cell = make_cell("INV_X1")
    n_seeds = 300          # the paper uses 1000 seeds; 300 keeps the example quick
    k_fitting = 7          # fitting input conditions for the proposed flow
    lut_budget = 18        # grid points granted to the statistical LUT

    print(f"Target technology : {target.describe()}")
    print(f"Cell under test   : {cell.name}, {n_seeds} Monte Carlo seeds")

    # Priors from two fast historical nodes (the paper uses six).
    historical_cells = [make_cell(name) for name in ("INV_X1", "NOR2_X1")]
    historical = [
        characterize_historical_library(node, historical_cells, counter=counter)
        for node in historical_technologies(exclude=target.name)[:2]
    ]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    # Shared Monte Carlo seeds so all flows see the same process population.
    variation = target.variation.sample(n_seeds, rng=2024)

    # ------------------------------------------------------------------
    # Proposed statistical flow: k conditions x n_seeds simulations.
    # ------------------------------------------------------------------
    flow = StatisticalCharacterizer(target, cell, delay_prior, slew_prior,
                                    n_seeds=n_seeds, counter=counter)
    flow.use_variation(variation)
    characterization = flow.characterize(k_fitting, rng=5)
    print(f"\nProposed flow: {characterization.simulation_runs} simulations "
          f"({k_fitting} conditions x {n_seeds} seeds)")

    # ------------------------------------------------------------------
    # Statistical LUT baseline with a grid of lut_budget points.
    # ------------------------------------------------------------------
    lut = StatisticalLutCharacterizer(target, cell, variation, counter=counter)
    lut.build(lut_budget)
    print(f"Statistical LUT: {lut.simulation_runs} simulations "
          f"({lut_budget} grid points x {n_seeds} seeds)")

    # ------------------------------------------------------------------
    # Accuracy against the Monte Carlo baseline on random validation points.
    # ------------------------------------------------------------------
    validation = InputSpace(target).sample_random(25, rng=99)
    baseline = statistical_baseline(cell, target, validation, variation,
                                    counter=counter)
    reference = baseline.statistics()
    proposed_stats = characterization.predict_statistics(validation)
    lut_stats = lut.predict_statistics(validation)

    proposed_err = statistical_errors(proposed_stats["mu_delay"],
                                      proposed_stats["sigma_delay"],
                                      reference["mu_delay"], reference["sigma_delay"])
    lut_err = statistical_errors(lut_stats["mu_delay"], lut_stats["sigma_delay"],
                                 reference["mu_delay"], reference["sigma_delay"])
    print("\n" + format_table(
        ["flow", "simulations", "mu(Td) err %", "sigma(Td) err %"],
        [
            ["proposed (per-seed MAP)", characterization.simulation_runs,
             proposed_err.relative_mu_percent, proposed_err.relative_sigma_percent],
            ["statistical LUT", lut.simulation_runs,
             lut_err.relative_mu_percent, lut_err.relative_sigma_percent],
        ],
        title="Statistical delay characterization accuracy (28 nm INV_X1)",
    ))

    # ------------------------------------------------------------------
    # Fig. 9 analogue: delay PDF at a low-Vdd operating point.
    # ------------------------------------------------------------------
    low_vdd_point = InputCondition(sin=5.09e-12, cload=1.67e-15, vdd=0.734)
    reference_samples = statistical_baseline(cell, target, [low_vdd_point], variation,
                                             counter=counter).delay_samples[0]
    proposed_samples = characterization.delay_samples(low_vdd_point)
    lut_samples = lut.delay_distribution(low_vdd_point, n_samples=n_seeds, rng=1)

    print(f"\nDelay distribution at {low_vdd_point.describe()}")
    for label, samples in (("MC baseline", reference_samples),
                           ("proposed", proposed_samples),
                           ("statistical LUT (Gaussian)", lut_samples)):
        stats = summarize(samples)
        print(f"  {label:28s} mean={stats.mean * 1e12:6.2f} ps  "
              f"sigma={stats.std * 1e12:5.2f} ps  skew={stats.skewness:+.2f}")
    print(f"  non-Gaussianity of baseline   : "
          f"{normality_deviation(reference_samples):.3f}")
    print(f"  non-Gaussianity of proposed   : "
          f"{normality_deviation(proposed_samples):.3f}")

    centers, density = empirical_pdf(reference_samples, n_bins=15)
    peak = density.max()
    print("\n  baseline delay PDF (text rendering):")
    for center, value in zip(centers, density):
        bar = "#" * int(round(40 * value / peak))
        print(f"    {center * 1e12:6.2f} ps | {bar}")

    print(f"\nTotal simulations: {counter.total}")
    print(f"Elapsed          : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
