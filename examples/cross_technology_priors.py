"""Cross-technology prior learning with belief propagation (paper Table I, Sec. IV).

This example looks inside the "historical learning" half of the flow:

* it fits the four-parameter compact model to INV / NAND2 / NOR2 cells in
  several synthetic technology nodes and prints the Table-I-style parameter
  table, showing how similar the parameters are across cells and nodes;
* it fuses the per-node fits into a prior with Gaussian belief propagation
  over the technology star and compares that against the simple pooled
  (empirical) estimate -- both responses learned in one *batched* BP call
  (``learn_priors(..., engine="batched")``, identical to the scalar
  ``engine="loop"`` path at machine precision);
* it illustrates the bias/variance trade-off in historical-library selection
  the paper discusses: a prior learned from matching (high-performance)
  nodes versus one that mixes in a low-power node;
* it threads one :class:`~repro.runtime.accounting.RunLedger` through the
  whole phase, so the closing report shows where the wall time went
  (``priors:plan`` / ``priors:simulate`` / ``priors:fit`` / ``priors:bp``)
  and how many simulator rows each technology node cost.

Run with::

    python examples/cross_technology_priors.py
"""

from __future__ import annotations

import time

from repro import (
    RunLedger,
    SimulationCounter,
    characterize_historical_library,
    get_technology,
    learn_prior,
    learn_priors,
    make_cell,
)
from repro.analysis import format_table
from repro.analysis.reporting import format_ledger
from repro.core.prior_learning import shared_reference_conditions


def main() -> None:
    start = time.time()
    counter = SimulationCounter()
    ledger = RunLedger()
    cells = [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")]
    node_names = ["n16_finfet_soi", "n28_bulk", "n45_bulk", "n28_lp"]
    unit_conditions = shared_reference_conditions(20)

    # ------------------------------------------------------------------
    # Per-node characterization and compact-model fits (Table I analogue).
    # The default engine="fused" routes every arc of the node through one
    # deduplicated simulation plan and one stacked least-squares solve.
    # ------------------------------------------------------------------
    libraries = {}
    rows = []
    for node_name in node_names:
        node = get_technology(node_name)
        data = characterize_historical_library(node, cells,
                                               unit_conditions=unit_conditions,
                                               counter=counter,
                                               ledger=ledger)
        libraries[node_name] = data
        for fit in data.arc_fits:
            if fit.arc_name.endswith("(fall)"):
                params = fit.delay_fit.params
                rows.append([node_name, fit.cell_name, params.kd, params.cpar_ff,
                             params.vprime_v, params.alpha_ff_per_ps,
                             100.0 * fit.delay_fit.mean_abs_relative_error])
    print(format_table(
        ["technology", "cell", "kd", "Cpar (fF)", "V' (V)", "alpha (fF/ps)",
         "fit error (%)"],
        rows,
        title="Extracted delay-model parameters (Table I analogue)",
    ))

    # ------------------------------------------------------------------
    # Prior fusion: belief propagation versus pooled empirical estimate.
    # ------------------------------------------------------------------
    matching = [libraries[name] for name in ("n16_finfet_soi", "n28_bulk", "n45_bulk")]
    priors = learn_priors(matching, method="bp", engine="batched", ledger=ledger)
    bp_prior = priors["delay"]
    empirical_prior = learn_prior(matching, response="delay", method="empirical")
    print("\nPrior over delay parameters (kd, Cpar, V', alpha):")
    print("  " + bp_prior.describe())
    print("  " + empirical_prior.describe())
    print("  slew prior (same batched BP call): " + priors["slew"].describe())
    print("  mean precision beta across the input space: "
          f"{bp_prior.precision_model.average_precision():.3g}")

    # ------------------------------------------------------------------
    # Historical-library selection: matching flavor versus mixed flavor.
    # ------------------------------------------------------------------
    mixed = [libraries[name] for name in ("n16_finfet_soi", "n28_bulk", "n28_lp")]
    mixed_prior = learn_prior(mixed, response="delay", method="bp")
    hp_std = bp_prior.density.standard_deviations()
    mixed_std = mixed_prior.density.standard_deviations()
    print("\n" + format_table(
        ["prior", "std(kd)", "std(Cpar) fF", "std(V') V", "std(alpha) fF/ps"],
        [
            ["matching HP nodes", *[float(v) for v in hp_std]],
            ["HP + LP mixed", *[float(v) for v in mixed_std]],
        ],
        title="Bias/variance trade-off in historical-library selection",
    ))
    print("\nMixing a low-power node widens the prior (more variance) but makes it "
          "less biased\ntoward high-performance targets -- the trade-off discussed "
          "in Section IV of the paper.")
    print("\n" + format_ledger(ledger, title="Where the prior-learning phase spent its time"))
    print(f"\nTotal simulations: {counter.total}")
    print(f"Elapsed          : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
