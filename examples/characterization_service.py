"""The characterization serving front door, exercised end to end.

Characterization as a long-lived *service* rather than a batch script:
many concurrent clients submit overlapping (cell, arcs, conditions)
requests to one :class:`repro.runtime.service.CharacterizationService`,
which folds them into shared fused-pipeline passes.  The demo walks the
four serving disciplines:

1. **Single-flight coalescing** -- eight clients wanting the same two
   cells are served by one fused pass; the stats show one or two batches
   and dozens of coalesced arcs instead of eight recomputations.
2. **Cooperative deadlines** -- an impatient client (tight ``deadline_s``)
   submits alongside a deliberately slowed batch (the
   ``service.slow_worker`` fault); it gets ``DeadlineExceeded`` promptly
   while a patient peer still receives the full, bit-exact result.
3. **Admission control / load-shedding** -- a shrunken queue under the
   ``reject`` policy turns excess submits into ``ServiceOverloaded``
   instead of unbounded backlog; the admitted requests all complete.
4. **Disk circuit breaker** -- an injected ENOSPC storm on the durable
   tier (``persist.write``) trips the breaker, detaches the disk store,
   and the service keeps answering from memory.

Run with::

    python examples/characterization_service.py

Environment knobs (see ``repro.runtime.service``):
``REPRO_SERVICE_QUEUE_DEPTH``, ``REPRO_SERVICE_BATCH_WINDOW_S``,
``REPRO_SERVICE_SHED_POLICY``, ``REPRO_SERVICE_BREAKER_THRESHOLD``,
``REPRO_SERVICE_BREAKER_COOLDOWN_S``.
"""

from __future__ import annotations

import tempfile
import threading
import time

from repro import (
    characterize_historical_library,
    get_technology,
    learn_prior,
    make_cell,
)
from repro.cells import Transition
from repro.characterization.input_space import InputSpace
from repro.runtime import FaultSpec, clear_all_caches, inject
from repro.runtime.persist import DiskStore
from repro.runtime.resilience import CircuitBreaker, DeadlineExceeded
from repro.runtime.service import CharacterizationService, ServiceOverloaded
from repro.spice.testbench import get_simulation_cache
from repro.utils.rng import ensure_rng


def arcs_of(cell):
    return tuple(cell.arc(pin, transition)
                 for pin in cell.input_pins
                 for transition in (Transition.FALL, Transition.RISE))


def show(stats) -> None:
    print(f"  submitted {stats.submitted}, completed {stats.completed}, "
          f"batches {stats.batches}, coalesced arcs {stats.coalesced_arcs}")
    print(f"  deadline misses {stats.deadline_misses}, shed {stats.shed}, "
          f"queue peak {stats.queue_peak}, breaker {stats.breaker_state} "
          f"(trips {stats.breaker_trips})")


def main() -> None:
    technology = get_technology("n28_bulk")
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")])]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")
    variation = technology.variation.sample(8, ensure_rng(11))
    conditions = tuple(InputSpace(technology).sample_lhs(2, ensure_rng(5)))
    cells = [make_cell("INV_X1"), make_cell("NAND2_X1")]

    def build(**kwargs):
        return CharacterizationService(technology, delay_prior, slew_prior,
                                       variation, **kwargs)

    # ------------------------------------------------------------------
    # 1. Single-flight coalescing: 8 clients, fully overlapping wants.
    # ------------------------------------------------------------------
    print("1. Single-flight coalescing -- 8 concurrent clients, 2 cells")
    clear_all_caches()
    results = {}
    with build(batch_window_s=0.05) as service:
        def client(slot):
            cell = cells[slot % len(cells)]
            results[slot] = service.request(cell, arcs_of(cell), conditions,
                                            deadline_s=120.0)
        start = time.perf_counter()
        threads = [threading.Thread(target=client, args=(slot,))
                   for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        stats = service.stats()
    assert all(result.complete for result in results.values())
    print(f"  8 clients served in {wall:.2f} s "
          f"({sum(r.coalesced for r in results.values())} rode shared work)")
    show(stats)

    # ------------------------------------------------------------------
    # 2. Deadlines: an impatient client against a slowed worker.
    # ------------------------------------------------------------------
    print("\n2. Cooperative deadlines -- slow worker, one impatient client")
    clear_all_caches()
    with inject([FaultSpec(site="service.slow_worker", kind="slow",
                           delay_s=0.5, at_calls=(0,))]):
        with build(batch_window_s=0.05) as service:
            impatient = service.submit(cells[0], arcs_of(cells[0]),
                                       conditions, deadline_s=0.1)
            patient = service.submit(cells[0], arcs_of(cells[0]),
                                     conditions, deadline_s=120.0)
            try:
                impatient.result(timeout=60)
                print("  impatient client: unexpectedly served")
            except DeadlineExceeded as error:
                print(f"  impatient client: {error}")
            result = patient.result(timeout=60)
            assert result.complete
            print("  patient client  : complete result, "
                  f"coalesced={result.coalesced}, wall {result.wall_s:.2f} s")
            show(service.stats())

    # ------------------------------------------------------------------
    # 3. Admission control: queue depth 2, reject policy.
    # ------------------------------------------------------------------
    print("\n3. Load-shedding -- queue depth 2, 6 submits, reject policy")
    clear_all_caches()
    service = build(queue_depth=2, batch_window_s=0.05, shed_policy="reject",
                    start=False)
    admitted, shed = [], 0
    for _ in range(6):
        try:
            admitted.append(service.submit(cells[0], arcs_of(cells[0]),
                                           conditions))
        except ServiceOverloaded:
            shed += 1
    service.start()
    served = [ticket.result(timeout=120) for ticket in admitted]
    assert all(result.complete for result in served)
    print(f"  admitted {len(admitted)}, shed {shed}; "
          "every admitted request completed")
    show(service.stats())
    service.close()

    # ------------------------------------------------------------------
    # 4. Disk circuit breaker: ENOSPC storm on the durable tier.
    # ------------------------------------------------------------------
    print("\n4. Circuit breaker -- ENOSPC storm on the disk tier")
    clear_all_caches()
    with tempfile.TemporaryDirectory(prefix="repro_service_demo_") as root:
        sim_cache = get_simulation_cache()
        sim_cache.attach_disk_store(DiskStore(root))
        try:
            with inject([FaultSpec(site="persist.write", kind="enospc",
                                   rate=1.0)]):
                with build(batch_window_s=0.05,
                           breaker=CircuitBreaker(failure_threshold=1,
                                                  cooldown_s=30.0)) as service:
                    result = service.request(cells[0], arcs_of(cells[0]),
                                             conditions, deadline_s=120.0)
                    assert result.complete
                    stats = service.stats()
            print("  request served from memory despite a failing disk tier")
            print(f"  breaker {stats.breaker_state}, trips "
                  f"{stats.breaker_trips}, disk detached: "
                  f"{sim_cache.disk_store is None}")
            show(stats)
        finally:
            if sim_cache.disk_store is not None:
                sim_cache.detach_disk_store()
    clear_all_caches()


if __name__ == "__main__":
    main()
