"""Library export and statistical timing of a small circuit.

The end-to-end consumer view of the paper's flow:

1. characterize INV / NAND2 / NOR2 in the 28 nm node with the proposed
   statistical flow (a handful of simulations per cell);
2. export the characterized library as a Liberty (.lib) file with NLDM delay
   and transition tables plus LVF-style sigma tables, and parse it back to
   verify the round trip;
3. run deterministic STA and Monte Carlo SSTA on the ISCAS-85 C17 benchmark
   and on a NAND/NOR reduction tree using the characterized timing.

Run with::

    python examples/liberty_and_ssta.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import (
    BayesianCharacterizer,
    InputCondition,
    SimulationCounter,
    StatisticalCharacterizer,
    characterize_historical_library,
    get_technology,
    historical_technologies,
    learn_prior,
    make_cell,
)
from repro.analysis import format_table
from repro.cells import Transition
from repro.liberty import CellTimingData, LibertyWriter, TimingTableSet, build_nldm_table, parse_liberty
from repro.sta import (
    MonteCarloSsta,
    StaticTimingAnalyzer,
    c17_benchmark,
    nand_nor_tree,
    timing_view_from_characterizers,
    timing_view_from_statistical,
)


def main() -> None:
    start = time.time()
    counter = SimulationCounter()
    target = get_technology("n28_bulk")
    vdd = target.vdd_nominal
    cell_names = ("INV_X1", "NAND2_X1", "NOR2_X1")
    n_seeds = 150

    # ------------------------------------------------------------------
    # Priors (one fast historical node keeps the example quick).
    # ------------------------------------------------------------------
    historical = [characterize_historical_library(
        historical_technologies(exclude=target.name)[0],
        [make_cell(name) for name in cell_names], counter=counter)]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    # ------------------------------------------------------------------
    # Characterize each cell: nominal (for STA / Liberty) and statistical
    # (for SSTA and the sigma tables).
    # ------------------------------------------------------------------
    variation = target.variation.sample(n_seeds, rng=3)
    nominal_flows = {}
    statistical_results = {}
    input_caps = {}
    for name in cell_names:
        cell = make_cell(name)
        flow = BayesianCharacterizer(target, cell, delay_prior, slew_prior,
                                     counter=counter)
        flow.fit(3, rng=17)
        nominal_flows[name] = flow
        input_caps[name] = flow.input_capacitance

        stat_flow = StatisticalCharacterizer(target, cell, delay_prior, slew_prior,
                                             n_seeds=n_seeds, counter=counter)
        stat_flow.use_variation(variation)
        statistical_results[name] = stat_flow.characterize(4, rng=23)
    print(f"Characterized {len(cell_names)} cells with {counter.total} simulations "
          f"(including historical learning)")

    # ------------------------------------------------------------------
    # Liberty export with sigma tables, then parse it back.
    # ------------------------------------------------------------------
    slew_axis = np.linspace(*target.slew_range, 4)
    cap_axis = np.linspace(*target.cload_range, 4)
    writer = LibertyWriter(f"repro_{target.name}", nominal_voltage=vdd)
    for name in cell_names:
        flow = nominal_flows[name]
        stat = statistical_results[name]

        def delay_at(sin, cload, bound=flow):
            return float(bound.predict_delay([InputCondition(sin, cload, vdd)])[0])

        def slew_at(sin, cload, bound=flow):
            return float(bound.predict_slew([InputCondition(sin, cload, vdd)])[0])

        def sigma_at(sin, cload, bound=stat):
            return float(np.std(bound.delay_samples(InputCondition(sin, cload, vdd))))

        table_set = TimingTableSet(
            related_pin=flow.arc.input_pin,
            output_transition=Transition(flow.arc.output_transition),
            delay=build_nldm_table(delay_at, slew_axis, cap_axis),
            transition=build_nldm_table(slew_at, slew_axis, cap_axis),
            sigma_delay=build_nldm_table(sigma_at, slew_axis, cap_axis),
        )
        writer.add_cell(CellTimingData(
            name=name, function=make_cell(name).function,
            input_pin_caps_pf={pin: input_caps[name] * 1e12
                               for pin in make_cell(name).input_pins},
            arcs=[table_set],
            area=make_cell(name).total_device_width_um(),
        ))

    liberty_path = os.path.join(tempfile.gettempdir(), f"repro_{target.name}.lib")
    writer.write(liberty_path)
    parsed = parse_liberty(writer.render())
    print(f"\nLiberty library written to {liberty_path} "
          f"({len(parsed.cells)} cells parsed back, "
          f"nom_voltage={parsed.nom_voltage} V)")

    # ------------------------------------------------------------------
    # STA and SSTA on benchmark circuits.
    # ------------------------------------------------------------------
    nominal_view = timing_view_from_characterizers(nominal_flows, vdd=vdd)
    statistical_view = timing_view_from_statistical(statistical_results, input_caps,
                                                    vdd=vdd)
    rows = []
    for netlist in (c17_benchmark(), nand_nor_tree(8)):
        sta_report = StaticTimingAnalyzer(netlist, nominal_view,
                                          primary_input_slew=5e-12).run()
        ssta_report = MonteCarloSsta(netlist, statistical_view,
                                     primary_input_slew=5e-12).run()
        rows.append([
            netlist.name,
            len(netlist.gates),
            sta_report.critical_delay * 1e12,
            ssta_report.summary.mean * 1e12,
            ssta_report.summary.std * 1e12,
            ssta_report.summary.quantiles[2] * 1e12,
            " -> ".join(sta_report.critical_path),
        ])
    print("\n" + format_table(
        ["circuit", "gates", "STA delay (ps)", "SSTA mean (ps)", "SSTA sigma (ps)",
         "SSTA 99% (ps)", "critical path"],
        rows,
        title=f"Timing of benchmark circuits at {vdd:.2f} V, 28 nm",
    ))
    print(f"\nTotal simulations: {counter.total}")
    print(f"Elapsed          : {time.time() - start:.1f} s")


if __name__ == "__main__":
    main()
